//! Maximum cycle ratio and the recurrence-constrained minimum initiation
//! interval.
//!
//! For a dependence cycle `c` with total latency `lat(c)` and total
//! iteration distance `dist(c)`, a modulo schedule with initiation interval
//! `II` exists only if `lat(c) ≤ II · dist(c)`. The binding quantity is the
//! *maximum cycle ratio* `max_c lat(c) / dist(c)`; its ceiling is `recMII`.
//!
//! Feasibility of a candidate `II` is decided exactly in integer arithmetic
//! with a Bellman–Ford positive-cycle test on edge weights
//! `lat − II · dist`, and `recMII` is found by binary search over integers —
//! no floating-point rounding can mis-classify a loop. The real-valued ratio
//! (used to order recurrences by criticality and for diagnostics) is then
//! refined by bisection.

use std::cmp::Ordering;
use std::fmt;

use crate::ddg::{Ddg, OpId};

/// A maximum cycle ratio: the real value (approximate) together with its
/// exact integer ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleRatio {
    value: f64,
    ceil: u32,
}

impl CycleRatio {
    /// The ratio as a float (bisected to ~1e-9 relative precision).
    #[must_use]
    pub fn value(self) -> f64 {
        self.value
    }

    /// The exact smallest integer `II` admitting the critical cycle.
    #[must_use]
    pub fn ceil(self) -> u32 {
        self.ceil
    }
}

impl PartialOrd for CycleRatio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        // Order primarily by the exact ceiling, breaking ties with the
        // refined real value, so sorting never contradicts the exact part.
        match self.ceil.cmp(&other.ceil) {
            Ordering::Equal => self.value.partial_cmp(&other.value),
            ord => Some(ord),
        }
    }
}

impl fmt::Display for CycleRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} (ceil {})", self.value, self.ceil)
    }
}

/// Internal compact edge representation over remapped node indices.
struct SubGraph {
    num_nodes: usize,
    edges: Vec<(usize, usize, u32, u32)>, // (src, dst, latency, distance)
}

impl SubGraph {
    fn whole(ddg: &Ddg) -> Self {
        let edges = ddg
            .edges()
            .map(|e| (e.src().index(), e.dst().index(), e.latency(), e.distance()))
            .collect();
        Self {
            num_nodes: ddg.num_ops(),
            edges,
        }
    }

    fn induced(ddg: &Ddg, members: &[OpId]) -> Self {
        // Dense remap table: members are a subset of one graph's op ids.
        let mut remap = vec![u32::MAX; ddg.num_ops()];
        for (i, &op) in members.iter().enumerate() {
            remap[op.index()] = u32::try_from(i).expect("member count fits u32");
        }
        let mut edges = Vec::new();
        for &op in members {
            for e in ddg.succs(op) {
                let dst = remap[e.dst().index()];
                if dst != u32::MAX {
                    edges.push((
                        remap[op.index()] as usize,
                        dst as usize,
                        e.latency(),
                        e.distance(),
                    ));
                }
            }
        }
        Self {
            num_nodes: members.len(),
            edges,
        }
    }

    /// Exact test: does a cycle with `Σlat − ii · Σdist > 0` exist?
    fn positive_cycle_at(&self, ii: i64) -> bool {
        self.positive_cycle(|lat, dist| i128::from(lat) - i128::from(ii) * i128::from(dist))
    }

    /// Approximate test at a real ratio.
    fn positive_cycle_at_real(&self, r: f64) -> bool {
        // Scale to integers: weights lat*SCALE - round(r*SCALE)*dist keeps
        // the test monotone in r while staying in exact arithmetic.
        const SCALE: f64 = 1e9;
        let rs = (r * SCALE).round() as i128;
        self.positive_cycle(|lat, dist| i128::from(lat) * (SCALE as i128) - rs * i128::from(dist))
    }

    /// Bellman–Ford longest-path positive-cycle detection.
    fn positive_cycle(&self, weight: impl Fn(u32, u32) -> i128) -> bool {
        if self.num_nodes == 0 || self.edges.is_empty() {
            return false;
        }
        // Longest-path potentials from a virtual source connected to every
        // node with weight 0.
        let mut dist = vec![0i128; self.num_nodes];
        for _ in 0..self.num_nodes {
            let mut changed = false;
            for &(u, v, lat, d) in &self.edges {
                let w = weight(lat, d);
                if dist[u] + w > dist[v] {
                    dist[v] = dist[u] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        // Still relaxing after |V| passes ⇒ positive cycle.
        let mut extra = false;
        for &(u, v, lat, d) in &self.edges {
            if dist[u] + weight(lat, d) > dist[v] {
                extra = true;
                break;
            }
        }
        extra
    }

    fn total_latency(&self) -> i64 {
        self.edges
            .iter()
            .map(|&(_, _, lat, _)| i64::from(lat))
            .sum()
    }

    /// Smallest integer `ii ≥ 0` with no positive cycle, or `None` when even
    /// `ii = Σlat` leaves one (i.e. a zero-distance cycle exists).
    fn min_feasible_ii(&self) -> Option<u32> {
        let hi = self.total_latency();
        if self.positive_cycle_at(hi) {
            return None;
        }
        let (mut lo, mut hi) = (0i64, hi);
        // Invariant: infeasible below lo (when lo>0), feasible at hi.
        if !self.positive_cycle_at(0) {
            return Some(0);
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.positive_cycle_at(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(u32::try_from(hi).expect("II bounded by total latency which fits u32"))
    }

    /// Bisect the real maximum cycle ratio, given that a cycle exists.
    fn max_ratio(&self) -> Option<CycleRatio> {
        let ceil = self.min_feasible_ii()?;
        if ceil == 0 {
            // Feasible at 0: either acyclic or only non-positive cycles.
            // Distinguish: a cycle exists iff relaxation at a very negative
            // ratio... simpler: check for any cycle via the distance-weights
            // trick — a cycle exists iff positive cycle on weights dist+lat+1.
            let has_cycle = self.positive_cycle(|lat, d| i128::from(lat) + i128::from(d) + 1);
            if !has_cycle {
                return None;
            }
            return Some(CycleRatio {
                value: 0.0,
                ceil: 0,
            });
        }
        let (mut lo, mut hi) = (f64::from(ceil - 1), f64::from(ceil));
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.positive_cycle_at_real(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(CycleRatio {
            value: 0.5 * (lo + hi),
            ceil,
        })
    }
}

/// The maximum cycle ratio of the whole graph, or `None` if acyclic.
///
/// # Panics
///
/// Panics if the graph contains a zero-distance cycle (the ratio is
/// unbounded); run [`Ddg::validate_schedulable`] first.
#[must_use]
pub fn max_cycle_ratio(ddg: &Ddg) -> Option<CycleRatio> {
    let sub = SubGraph::whole(ddg);
    if sub.min_feasible_ii().is_none() {
        panic!("zero-distance cycle: maximum cycle ratio is unbounded");
    }
    sub.max_ratio()
}

/// The maximum cycle ratio of the subgraph induced by `members`, or `None`
/// if that subgraph is acyclic.
///
/// # Panics
///
/// Panics if the induced subgraph contains a zero-distance cycle.
#[must_use]
pub fn max_cycle_ratio_in(ddg: &Ddg, members: &[OpId]) -> Option<CycleRatio> {
    let sub = SubGraph::induced(ddg, members);
    if sub.min_feasible_ii().is_none() {
        panic!("zero-distance cycle: maximum cycle ratio is unbounded");
    }
    sub.max_ratio()
}

/// `recMII`: the smallest integer `II` compatible with every dependence
/// cycle, or `None` when a zero-distance cycle makes the loop unschedulable.
///
/// Served from the graph's analysis cache ([`Ddg::rec_mii_checked`]), so
/// repeated queries — one per candidate configuration in the exploration
/// sweeps — cost a load instead of a Bellman–Ford binary search.
#[must_use]
pub fn min_feasible_ii(ddg: &Ddg) -> Option<u32> {
    ddg.rec_mii_checked()
}

/// The uncached computation behind [`Ddg::rec_mii_checked`].
pub(crate) fn compute_min_feasible_ii(ddg: &Ddg) -> Option<u32> {
    SubGraph::whole(ddg).min_feasible_ii()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpClass;

    fn ratio(g: &Ddg) -> CycleRatio {
        max_cycle_ratio(g).expect("graph has a cycle")
    }

    #[test]
    fn acyclic_has_no_ratio() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 5);
        let g = b.build().unwrap();
        assert!(max_cycle_ratio(&g).is_none());
        assert_eq!(min_feasible_ii(&g), Some(0));
    }

    #[test]
    fn simple_self_loop_ratio() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        b.dep_dist(a, a, 7, 2);
        let g = b.build().unwrap();
        let r = ratio(&g);
        assert_eq!(r.ceil(), 4); // ceil(7/2)
        assert!((r.value() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn figure4_recurrence() {
        // Paper Figure 4: {A,B,C} with unit latencies, distance 1 → recMII 3.
        let mut b = DdgBuilder::new("fig4");
        let a = b.op("A", OpClass::IntArith);
        let bb = b.op("B", OpClass::IntArith);
        let c = b.op("C", OpClass::IntArith);
        b.dep(a, bb, 1).dep(bb, c, 1).dep_dist(c, a, 1, 1);
        let g = b.build().unwrap();
        let r = ratio(&g);
        assert_eq!(r.ceil(), 3);
        assert!((r.value() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn max_over_multiple_cycles() {
        let mut b = DdgBuilder::new("t");
        // Cycle 1: ratio 2/1 = 2. Cycle 2: ratio 9/4 = 2.25 → recMII 3.
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1).dep_dist(c, a, 1, 1);
        let d = b.op("c", OpClass::IntArith);
        b.dep_dist(d, d, 9, 4);
        let g = b.build().unwrap();
        let r = ratio(&g);
        assert_eq!(r.ceil(), 3);
        assert!((r.value() - 2.25).abs() < 1e-6);
    }

    #[test]
    fn induced_subgraph_ignores_outside_cycles() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1).dep_dist(c, a, 1, 1); // cycle {a,b}, ratio 2
        let d = b.op("c", OpClass::IntArith);
        b.dep_dist(d, d, 10, 1); // self-cycle ratio 10
        let g = b.build().unwrap();
        let r = max_cycle_ratio_in(&g, &[OpId(0), OpId(1)]).unwrap();
        assert_eq!(r.ceil(), 2);
        assert!(max_cycle_ratio_in(&g, &[OpId(0)]).is_none());
    }

    #[test]
    fn zero_latency_cycle_gives_zero_ratio() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        b.dep_dist(a, a, 0, 3);
        let g = b.build().unwrap();
        let r = ratio(&g);
        assert_eq!(r.ceil(), 0);
        assert_eq!(r.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-distance cycle")]
    fn zero_distance_cycle_panics() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1).dep(c, a, 1);
        let g = b.build().unwrap();
        let _ = max_cycle_ratio(&g);
    }

    #[test]
    fn ordering_follows_ceiling_then_value() {
        let a = CycleRatio {
            value: 2.25,
            ceil: 3,
        };
        let b = CycleRatio {
            value: 3.0,
            ceil: 3,
        };
        let c = CycleRatio {
            value: 1.0,
            ceil: 1,
        };
        assert!(a < b);
        assert!(c < a);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn long_cycle_exact_ceiling() {
        // 25 fp-arith ops (latency 3) around a distance-4 cycle:
        // ratio = 75/4 = 18.75 → ceil 19.
        let mut b = DdgBuilder::new("t");
        let ids: Vec<_> = (0..25)
            .map(|i| b.op(format!("n{i}"), OpClass::FpArith))
            .collect();
        for w in ids.windows(2) {
            b.dep(w[0], w[1], 3);
        }
        b.dep_dist(*ids.last().unwrap(), ids[0], 3, 4);
        let g = b.build().unwrap();
        let r = ratio(&g);
        assert_eq!(r.ceil(), 19);
        assert!((r.value() - 18.75).abs() < 1e-6);
    }
}
