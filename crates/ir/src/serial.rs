//! On-disk serialization of [`Ddg`]s and [`Loop`]s (corpus format v1).
//!
//! # Format
//!
//! A graph serialises to a JSON object with exactly three fields:
//!
//! ```json
//! {
//!   "name": "saxpy",
//!   "ops":   [ {"name": "load x", "class": "fmem"}, ... ],
//!   "edges": [ {"src": 0, "dst": 1, "latency": 2, "distance": 0,
//!               "kind": "flow"}, ... ]
//! }
//! ```
//!
//! and a [`Loop`] wraps one with its profile data:
//!
//! ```json
//! { "ddg": { ... }, "trip_count": 100, "weight": 0.25 }
//! ```
//!
//! # Index invariants
//!
//! The arrays are written **in identifier order**: `ops[i]` is the
//! operation with [`OpId`]`(i)` and `edges[j]` the edge with
//! [`crate::EdgeId`]`(j)`. Loading rebuilds the graph through
//! [`DdgBuilder`] by feeding ops and edges back in exactly that order, so
//! the documented invariants — `OpId` order = insertion order = CSR row
//! order, `EdgeId` order = insertion order — hold for a reloaded graph *by
//! construction*, and a serialize → load round trip is structurally
//! identical ([`Ddg`] equality) to the original.
//!
//! # Strictness
//!
//! Loading validates everything and fails with a [`SerialError`] naming
//! the JSON path: missing or unknown fields, wrong types, out-of-range
//! numbers, unknown mnemonics, dangling edge endpoints and zero-distance
//! self-loops (the latter two via [`DdgBuilder::build`]). Floats use
//! Rust's shortest round-trip `Display` form, so weights survive a round
//! trip bit-exactly.

use serde::{write_json_str, Serialize};
use serde_json::Value;
use std::fmt;

use crate::builder::DdgBuilder;
use crate::ddg::{Ddg, DepKind, Loop, OpId};
use crate::op::OpClass;

/// A deserialization failure: what went wrong and where in the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialError {
    /// JSON-path-like location (`$.ops[3].class`).
    pub path: String,
    /// What went wrong there.
    pub message: String,
}

impl SerialError {
    fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        SerialError {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for SerialError {}

impl Serialize for Ddg {
    fn serialize_into(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_json_str(self.name(), out);
        out.push_str(",\"ops\":[");
        for (i, op) in self.ops().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_str(op.name(), out);
            out.push_str(",\"class\":");
            write_json_str(op.class().as_str(), out);
            out.push('}');
        }
        out.push_str("],\"edges\":[");
        for (j, e) in self.edges().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"src\":{},\"dst\":{},\"latency\":{},\"distance\":{},\"kind\":",
                e.src().0,
                e.dst().0,
                e.latency(),
                e.distance()
            ));
            write_json_str(e.kind().as_str(), out);
            out.push('}');
        }
        out.push_str("]}");
    }
}

impl Serialize for Loop {
    fn serialize_into(&self, out: &mut String) {
        out.push_str("{\"ddg\":");
        self.ddg().serialize_into(out);
        out.push_str(&format!(
            ",\"trip_count\":{},\"weight\":",
            self.trip_count()
        ));
        self.weight().serialize_into(out);
        out.push('}');
    }
}

/// Asserts `v` is a JSON object whose keys are all in `allowed` — unknown
/// keys are a hard error so format drift is caught at load time, not
/// silently ignored. `path` names the object in error messages.
///
/// Shared by every strict loader built on the serial format (the corpus
/// loader in `vliw-workloads` validates its envelope with the same
/// helpers, so error wording is uniform across a document).
///
/// # Errors
///
/// Returns [`SerialError`] when `v` is not an object or has a key outside
/// `allowed`.
pub fn check_fields(v: &Value, path: &str, allowed: &[&str]) -> Result<(), SerialError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| SerialError::new(path, format!("expected object, got {}", v.type_name())))?;
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(SerialError::new(
                path,
                format!("unknown field `{k}` (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

/// Fetches required field `key` of object `v` (see [`check_fields`]).
///
/// # Errors
///
/// Returns [`SerialError`] when the field is missing.
pub fn get_field<'v>(v: &'v Value, path: &str, key: &str) -> Result<&'v Value, SerialError> {
    v.get(key)
        .ok_or_else(|| SerialError::new(path, format!("missing field `{key}`")))
}

/// Fetches required string field `key` of object `v`.
///
/// # Errors
///
/// Returns [`SerialError`] when the field is missing or not a string.
pub fn get_str_field<'v>(v: &'v Value, path: &str, key: &str) -> Result<&'v str, SerialError> {
    let field = get_field(v, path, key)?;
    field.as_str().ok_or_else(|| {
        SerialError::new(
            format!("{path}.{key}"),
            format!("expected string, got {}", field.type_name()),
        )
    })
}

/// Fetches required `u32` field `key` of object `v`.
///
/// # Errors
///
/// Returns [`SerialError`] when the field is missing, not a number, or
/// not a non-negative integer in `u32` range.
pub fn get_u32_field(v: &Value, path: &str, key: &str) -> Result<u32, SerialError> {
    let field = get_field(v, path, key)?;
    field
        .as_number()
        .and_then(serde_json::Number::as_u32)
        .ok_or_else(|| {
            SerialError::new(
                format!("{path}.{key}"),
                format!(
                    "expected unsigned 32-bit integer, got {}",
                    field.type_name()
                ),
            )
        })
}

impl Ddg {
    /// Rebuilds a graph from its parsed JSON form (see the module docs for
    /// the format), re-validating everything through [`DdgBuilder`].
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] naming the offending JSON path for any
    /// structural problem: wrong types, missing/unknown fields, unknown
    /// mnemonics, dangling edge endpoints or zero-distance self-loops.
    pub fn from_json_value(v: &Value) -> Result<Self, SerialError> {
        let path = "$";
        check_fields(v, path, &["name", "ops", "edges"])?;
        let name = get_str_field(v, path, "name")?;
        let mut b = DdgBuilder::new(name);

        let ops_path = format!("{path}.ops");
        let ops = get_field(v, path, "ops")?.as_array().ok_or_else(|| {
            SerialError::new(&ops_path, "expected array of operations".to_owned())
        })?;
        for (i, op) in ops.iter().enumerate() {
            let p = format!("{ops_path}[{i}]");
            check_fields(op, &p, &["name", "class"])?;
            let op_name = get_str_field(op, &p, "name")?;
            let class: OpClass = get_str_field(op, &p, "class")?
                .parse()
                .map_err(|e| SerialError::new(format!("{p}.class"), format!("{e}")))?;
            b.op(op_name, class);
        }

        let edges_path = format!("{path}.edges");
        let edges = get_field(v, path, "edges")?
            .as_array()
            .ok_or_else(|| SerialError::new(&edges_path, "expected array of edges".to_owned()))?;
        for (j, e) in edges.iter().enumerate() {
            let p = format!("{edges_path}[{j}]");
            check_fields(e, &p, &["src", "dst", "latency", "distance", "kind"])?;
            let src = OpId(get_u32_field(e, &p, "src")?);
            let dst = OpId(get_u32_field(e, &p, "dst")?);
            let latency = get_u32_field(e, &p, "latency")?;
            let distance = get_u32_field(e, &p, "distance")?;
            let kind: DepKind = get_str_field(e, &p, "kind")?
                .parse()
                .map_err(|err| SerialError::new(format!("{p}.kind"), format!("{err}")))?;
            b.dep_full(src, dst, latency, distance, kind);
        }

        b.build()
            .map_err(|e| SerialError::new(edges_path, format!("{e}")))
    }

    /// Parses a graph from its JSON text form.
    ///
    /// # Example
    ///
    /// A serialize → load round trip is structural equality:
    ///
    /// ```
    /// use vliw_ir::{Ddg, DdgBuilder, OpClass};
    ///
    /// let mut b = DdgBuilder::new("axpy");
    /// let ld = b.op("load", OpClass::FpMemory);
    /// let mul = b.op("mul", OpClass::FpMul);
    /// b.flow(ld, mul);
    /// let ddg = b.build()?;
    ///
    /// let json = serde_json::to_string(&ddg)?;
    /// let back = Ddg::from_json_str(&json)?;
    /// assert_eq!(back, ddg);
    /// assert_eq!(back.rec_mii(), ddg.rec_mii());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] for malformed JSON or any structural
    /// problem [`Ddg::from_json_value`] rejects.
    pub fn from_json_str(s: &str) -> Result<Self, SerialError> {
        let v = serde_json::from_str(s).map_err(|e| SerialError::new("$", format!("{e}")))?;
        Self::from_json_value(&v)
    }
}

impl Loop {
    /// Rebuilds a profiled loop from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] for any problem in the embedded graph, a
    /// zero trip count, or a weight that is not finite and positive (the
    /// invariants [`Loop::new`] asserts, reported as errors here).
    pub fn from_json_value(v: &Value) -> Result<Self, SerialError> {
        let path = "$";
        check_fields(v, path, &["ddg", "trip_count", "weight"])?;
        let ddg = Ddg::from_json_value(get_field(v, path, "ddg")?)
            .map_err(|e| SerialError::new(format!("$.ddg{}", &e.path[1..]), e.message))?;
        let tc_field = get_field(v, path, "trip_count")?;
        let trip_count = tc_field
            .as_number()
            .and_then(serde_json::Number::as_u64)
            .ok_or_else(|| {
                SerialError::new(
                    "$.trip_count",
                    format!(
                        "expected unsigned 64-bit integer, got {}",
                        tc_field.type_name()
                    ),
                )
            })?;
        if trip_count == 0 {
            return Err(SerialError::new(
                "$.trip_count",
                "a profiled loop ran at least once".to_owned(),
            ));
        }
        let w_field = get_field(v, path, "weight")?;
        let weight = w_field.as_f64().ok_or_else(|| {
            SerialError::new(
                "$.weight",
                format!("expected number, got {}", w_field.type_name()),
            )
        })?;
        if !(weight.is_finite() && weight > 0.0) {
            return Err(SerialError::new(
                "$.weight",
                format!("loop weight must be positive and finite, got {weight}"),
            ));
        }
        Ok(Loop::new(ddg, trip_count, weight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::EdgeId;

    fn sample() -> Ddg {
        let mut b = DdgBuilder::new("sample \"loop\"");
        let lx = b.op("load x", OpClass::FpMemory);
        let m = b.op("a*x", OpClass::FpMul);
        let acc = b.op("acc", OpClass::FpArith);
        let st = b.op("store", OpClass::FpMemory);
        b.flow(lx, m);
        b.flow(m, acc);
        b.flow_carried(acc, acc, 1);
        b.flow(acc, st);
        b.order(st, lx, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn ddg_round_trips_structurally() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        let back = Ddg::from_json_str(&json).unwrap();
        assert_eq!(g, back);
        // Identifier order is preserved exactly.
        for (a, b) in g.ops().zip(back.ops()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.name(), b.name());
            assert_eq!(a.class(), b.class());
        }
        for (a, b) in g.edges().zip(back.edges()) {
            assert_eq!(a.id(), b.id());
        }
        // CSR adjacency is rebuilt identically.
        for id in g.op_ids() {
            assert_eq!(g.succ_edge_ids(id), back.succ_edge_ids(id));
            assert_eq!(g.pred_edge_ids(id), back.pred_edge_ids(id));
        }
        assert_eq!(g.rec_mii(), back.rec_mii());
    }

    #[test]
    fn pretty_form_parses_too() {
        let g = sample();
        let pretty = serde_json::to_string_pretty(&g).unwrap();
        assert_eq!(Ddg::from_json_str(&pretty).unwrap(), g);
    }

    #[test]
    fn loop_round_trips_bit_exactly() {
        let l = Loop::new(sample(), 12345, 0.1 + 0.2); // non-representable weight
        let json = serde_json::to_string(&l).unwrap();
        let v = serde_json::from_str(&json).unwrap();
        let back = Loop::from_json_value(&v).unwrap();
        assert_eq!(back.trip_count(), 12345);
        assert_eq!(back.weight().to_bits(), l.weight().to_bits());
        assert_eq!(back.ddg(), l.ddg());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let json = r#"{"name":"x","ops":[],"edges":[],"extra":1}"#;
        let err = Ddg::from_json_str(json).unwrap_err();
        assert!(err.message.contains("unknown field `extra`"), "{err}");
    }

    #[test]
    fn bad_mnemonics_name_their_path() {
        let json = r#"{"name":"x","ops":[{"name":"a","class":"warp"}],"edges":[]}"#;
        let err = Ddg::from_json_str(json).unwrap_err();
        assert_eq!(err.path, "$.ops[0].class");
        assert!(err.message.contains("warp"), "{err}");
    }

    #[test]
    fn dangling_edges_are_rejected() {
        let json = r#"{"name":"x","ops":[{"name":"a","class":"iadd"}],
                       "edges":[{"src":0,"dst":7,"latency":1,"distance":0,"kind":"flow"}]}"#;
        let err = Ddg::from_json_str(json).unwrap_err();
        assert!(err.message.contains('7'), "{err}");
    }

    #[test]
    fn zero_distance_self_loop_is_rejected() {
        let json = r#"{"name":"x","ops":[{"name":"a","class":"iadd"}],
                       "edges":[{"src":0,"dst":0,"latency":1,"distance":0,"kind":"flow"}]}"#;
        assert!(Ddg::from_json_str(json).is_err());
    }

    #[test]
    fn loop_invariants_become_errors_not_panics() {
        let g = r#"{"name":"x","ops":[{"name":"a","class":"iadd"}],"edges":[]}"#;
        for (tc, w, path) in [
            ("0", "0.5", "$.trip_count"),
            ("10", "0", "$.weight"),
            ("10", "-1.5", "$.weight"),
            ("1.5", "0.5", "$.trip_count"),
        ] {
            let json = format!(r#"{{"ddg":{g},"trip_count":{tc},"weight":{w}}}"#);
            let v = serde_json::from_str(&json).unwrap();
            let err = Loop::from_json_value(&v).unwrap_err();
            assert_eq!(err.path, path, "{err}");
        }
    }

    #[test]
    fn mnemonic_parsing_is_exact() {
        for class in OpClass::SOURCE_CLASSES.into_iter().chain([OpClass::Copy]) {
            assert_eq!(class.as_str().parse::<OpClass>().unwrap(), class);
        }
        assert!("IMEM".parse::<OpClass>().is_err());
        assert_eq!("flow".parse::<DepKind>().unwrap(), DepKind::Flow);
        assert_eq!("order".parse::<DepKind>().unwrap(), DepKind::Order);
        assert!("anti".parse::<DepKind>().is_err());
        let _ = EdgeId(0); // silence unused import on some cfgs
    }
}
