//! Loop intermediate representation for clustered VLIW modulo scheduling.
//!
//! This crate implements the compiler-side substrate of the CGO 2007 paper
//! *"Heterogeneous Clustered VLIW Microarchitectures"* (Aletà, Codina,
//! González, Kaeli): typed loop operations, data-dependence graphs (DDGs)
//! with `(latency, distance)` dependence edges, recurrence (strongly
//! connected component) analysis, elementary-circuit enumeration, and the
//! recurrence-constrained minimum initiation interval (`recMII`) computed as
//! a maximum cycle ratio.
//!
//! The modulo scheduler in `vliw-sched` and the workload generator in
//! `vliw-workloads` both build on these types.
//!
//! # Storage and index stability
//!
//! Graphs are stored densely — `u32` [`OpId`]/[`EdgeId`] newtypes over
//! flat arrays, with compressed-sparse-row (CSR) adjacency — and
//! graph-level analyses (SCCs, recurrences, topological order, `recMII`,
//! FU counts, iteration energy) are computed once and cached on the
//! immutable [`Ddg`]. Every layer above relies on these invariants:
//!
//! * **`OpId` order = insertion order = CSR row order**: `OpId(i)` is the
//!   `i`-th operation passed to the builder, row `i` of both CSR tables,
//!   and index `i` of every scheduler side table (cluster assignments,
//!   issue cycles, heights, …).
//! * **`EdgeId` order = insertion order**, and within one CSR row edge
//!   ids ascend, so [`Ddg::succs`]/[`Ddg::preds`] iterate in the
//!   builder's edge-insertion order.
//! * A [`Ddg`] is immutable after [`DdgBuilder::build`]; the analysis
//!   caches are therefore pure memoisation and can never change a
//!   result, only when the work happens.
//!
//! # Example
//!
//! Build the three-operation recurrence of the paper's Figure 4 and compute
//! its `recMII`:
//!
//! ```
//! use vliw_ir::{DdgBuilder, OpClass};
//!
//! let mut b = DdgBuilder::new("figure4");
//! let a = b.op("A", OpClass::IntArith);
//! let bb = b.op("B", OpClass::IntArith);
//! let c = b.op("C", OpClass::IntArith);
//! let d = b.op("D", OpClass::IntArith);
//! let e = b.op("E", OpClass::IntArith);
//! b.dep(a, bb, 1); // same-iteration edges, unit latency (Figure 4)
//! b.dep(bb, c, 1);
//! b.dep_dist(c, a, 1, 1); // loop-carried edge closing the recurrence
//! b.dep(a, d, 1);
//! b.dep(d, e, 1);
//! let ddg = b.build().unwrap();
//!
//! // Every op has latency 1, the {A, B, C} circuit has distance 1, so
//! // recMII = ceil(3 / 1) = 3 (Figure 4 of the paper).
//! assert_eq!(ddg.rec_mii(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod cycles;
mod ddg;
mod dot;
mod error;
mod op;
mod ratio;
mod scc;
mod serial;
mod toposort;

pub use builder::DdgBuilder;
pub use cycles::{elementary_circuits, Circuit, CircuitLimit};
pub use ddg::{build_csr, Ddg, DepEdge, DepKind, EdgeId, Loop, OpId, Operation};
pub use dot::to_dot;
pub use error::{BuildError, IrError};
pub use op::{FuKind, OpClass, ParseMnemonicError};
pub use ratio::{max_cycle_ratio, min_feasible_ii, CycleRatio};
pub use scc::{condensation, Recurrence, SccId, StronglyConnectedComponents};
pub use serial::{check_fields, get_field, get_str_field, get_u32_field, SerialError};
pub use toposort::{topological_order, TopoError};
