//! Topological ordering over the acyclic part of a DDG.
//!
//! Modulo schedulers process operations in an order compatible with the
//! same-iteration (distance-0) dependences; loop-carried edges may point
//! "backwards" and are ignored here. The distance-0 subgraph of a
//! schedulable DDG is a DAG ([`crate::Ddg::validate_schedulable`]).

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::ddg::{Ddg, OpId};

/// Error returned when the distance-0 subgraph is cyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoError {
    /// Name of an operation on the zero-distance cycle.
    pub op: String,
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zero-distance dependence cycle through `{}`", self.op)
    }
}

impl Error for TopoError {}

/// Kahn topological sort over distance-0 edges.
///
/// Ties are broken by operation id, so the order is deterministic. The
/// result is served from the graph's analysis cache ([`Ddg::topo_order`]);
/// call that method directly to borrow the cached slice without cloning.
///
/// # Errors
///
/// Returns [`TopoError`] if the distance-0 subgraph contains a cycle.
pub fn topological_order(ddg: &Ddg) -> Result<Vec<OpId>, TopoError> {
    ddg.topo_order().map(<[OpId]>::to_vec)
}

/// The uncached computation behind [`Ddg::topo_order`].
pub(crate) fn compute_topological_order(ddg: &Ddg) -> Result<Vec<OpId>, TopoError> {
    let n = ddg.num_ops();
    let mut indeg = vec![0usize; n];
    for e in ddg.edges() {
        if e.distance() == 0 {
            indeg[e.dst().index()] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(OpId(v as u32));
        for e in ddg.succs(OpId(v as u32)) {
            if e.distance() == 0 {
                let w = e.dst().index();
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n)
            .find(|&v| indeg[v] > 0)
            .expect("some node must have positive in-degree");
        return Err(TopoError {
            op: ddg.op(OpId(stuck as u32)).name().to_owned(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpClass;

    #[test]
    fn respects_distance_zero_edges() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        let d = b.op("c", OpClass::IntArith);
        b.dep(d, c, 1).dep(c, a, 1);
        let g = b.build().unwrap();
        let order = topological_order(&g).unwrap();
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(d) < pos(c));
        assert!(pos(c) < pos(a));
    }

    #[test]
    fn carried_back_edges_are_ignored() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1).dep_dist(c, a, 1, 1);
        let g = b.build().unwrap();
        assert_eq!(topological_order(&g).unwrap().len(), 2);
    }

    #[test]
    fn zero_distance_cycle_is_an_error() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1).dep(c, a, 1);
        let g = b.build().unwrap();
        let err = topological_order(&g).unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let mut b = DdgBuilder::new("t");
        for i in 0..8 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let g = b.build().unwrap();
        let order = topological_order(&g).unwrap();
        assert_eq!(order, (0..8).map(OpId).collect::<Vec<_>>());
    }
}
