//! Error types for graph construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors reported while building a [`crate::Ddg`] with
/// [`crate::DdgBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// An edge referenced an operation id not created by this builder.
    UnknownOp {
        /// The offending identifier.
        op: u32,
        /// Number of operations the builder currently holds.
        num_ops: usize,
    },
    /// A self-edge with distance zero was added; such an edge can never be
    /// satisfied by any schedule.
    ZeroDistanceSelfLoop {
        /// Name of the operation with the impossible self-dependence.
        op: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownOp { op, num_ops } => {
                write!(
                    f,
                    "edge references operation n{op} but only {num_ops} operations exist"
                )
            }
            BuildError::ZeroDistanceSelfLoop { op } => {
                write!(
                    f,
                    "operation `{op}` depends on itself within the same iteration"
                )
            }
        }
    }
}

impl Error for BuildError {}

/// Errors reported by analyses over a built [`crate::Ddg`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// The graph contains a dependence cycle whose total iteration distance
    /// is zero; no initiation interval can schedule it.
    ZeroDistanceCycle {
        /// Name of one operation on the offending cycle.
        op: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ZeroDistanceCycle { op } => {
                write!(
                    f,
                    "dependence cycle through `{op}` has zero total iteration distance"
                )
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BuildError::UnknownOp { op: 7, num_ops: 3 };
        assert!(e.to_string().contains("n7"));
        let e = BuildError::ZeroDistanceSelfLoop { op: "x".into() };
        assert!(e.to_string().contains('x'));
        let e = IrError::ZeroDistanceCycle { op: "y".into() };
        assert!(e.to_string().contains('y'));
    }
}
