//! Strongly connected components and recurrence extraction.
//!
//! In modulo scheduling, *recurrences* — dependence cycles spanning one or
//! more iterations — bound the initiation interval from below and drive the
//! heterogeneous partitioner's pre-placement pass (paper §4.1.1). Every
//! dependence cycle lives inside one strongly connected component of the
//! DDG, so we treat each non-trivial SCC as a recurrence unit: it must not
//! be split across clusters during coarsening.

use crate::ddg::{Ddg, OpId};
use crate::ratio::{max_cycle_ratio_in, CycleRatio};

/// Identifier of a strongly connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SccId(pub u32);

impl SccId {
    /// The component's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The strongly connected components of a DDG, computed with Tarjan's
/// algorithm (iterative, so deep graphs cannot overflow the stack).
#[derive(Debug, Clone)]
pub struct StronglyConnectedComponents {
    /// `membership[op] = scc` for every operation.
    membership: Vec<SccId>,
    /// Members of each component, in discovery order.
    components: Vec<Vec<OpId>>,
}

impl StronglyConnectedComponents {
    /// Computes the SCCs of `ddg`.
    #[must_use]
    pub fn compute(ddg: &Ddg) -> Self {
        let n = ddg.num_ops();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![usize::MAX; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut membership = vec![SccId(u32::MAX); n];
        let mut components: Vec<Vec<OpId>> = Vec::new();
        let mut next_index = 0usize;

        // Explicit DFS state: (node, iterator position over successors).
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames = vec![Frame::Enter(root)];
            while let Some(frame) = frames.pop() {
                match frame {
                    Frame::Enter(v) => {
                        index[v] = next_index;
                        lowlink[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        frames.push(Frame::Resume(v, 0));
                    }
                    Frame::Resume(v, mut ei) => {
                        // The CSR row is a slice: no per-frame allocation.
                        let succs = ddg.succ_edge_ids(OpId(v as u32));
                        let mut descended = false;
                        while ei < succs.len() {
                            let w = ddg.edge(succs[ei]).dst().index();
                            ei += 1;
                            if index[w] == usize::MAX {
                                frames.push(Frame::Resume(v, ei));
                                frames.push(Frame::Enter(w));
                                descended = true;
                                break;
                            } else if on_stack[w] {
                                lowlink[v] = lowlink[v].min(index[w]);
                            }
                        }
                        if descended {
                            continue;
                        }
                        if lowlink[v] == index[v] {
                            let scc = SccId(components.len() as u32);
                            let mut members = Vec::new();
                            loop {
                                let w = stack.pop().expect("tarjan stack underflow");
                                on_stack[w] = false;
                                membership[w] = scc;
                                members.push(OpId(w as u32));
                                if w == v {
                                    break;
                                }
                            }
                            members.reverse();
                            components.push(members);
                        }
                        // Propagate lowlink to parent, if any.
                        if let Some(Frame::Resume(p, _)) = frames.last() {
                            let p = *p;
                            lowlink[p] = lowlink[p].min(lowlink[v]);
                        }
                    }
                }
            }
        }
        Self {
            membership,
            components,
        }
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the graph had no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component containing operation `op`.
    #[must_use]
    pub fn component_of(&self, op: OpId) -> SccId {
        self.membership[op.index()]
    }

    /// Members of component `scc`.
    #[must_use]
    pub fn members(&self, scc: SccId) -> &[OpId] {
        &self.components[scc.index()]
    }

    /// Iterate over `(SccId, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SccId, &[OpId])> + '_ {
        self.components
            .iter()
            .enumerate()
            .map(|(i, m)| (SccId(i as u32), m.as_slice()))
    }

    /// Extracts the non-trivial recurrences of `ddg`: one [`Recurrence`] per
    /// SCC that contains a dependence cycle, with its critical cycle ratio.
    ///
    /// Single-node components count only if the node has a (carried)
    /// self-edge.
    #[must_use]
    pub fn recurrences(&self, ddg: &Ddg) -> Vec<Recurrence> {
        let mut out = Vec::new();
        for (scc, members) in self.iter() {
            let cyclic = members.len() > 1 || ddg.succs(members[0]).any(|e| e.dst() == members[0]);
            if !cyclic {
                continue;
            }
            let ratio =
                max_cycle_ratio_in(ddg, members).expect("SCC marked cyclic must contain a cycle");
            out.push(Recurrence {
                scc,
                ops: members.to_vec(),
                critical_ratio: ratio,
            });
        }
        // Most critical first (paper §4.1.1 orders by criticality).
        out.sort_by(|a, b| {
            b.critical_ratio
                .partial_cmp(&a.critical_ratio)
                .expect("cycle ratios are finite")
        });
        out
    }
}

/// A recurrence: the operations of one cyclic SCC plus the critical cycle
/// ratio (`total latency / total distance`, maximized over the SCC's
/// cycles).
///
/// `ceil(critical_ratio)` cycles is the tightest `II` this recurrence admits
/// on a cluster running at the reference frequency; multiplied by a cluster's
/// cycle time it yields the recurrence's contribution to `recMIT`.
#[derive(Debug, Clone, PartialEq)]
pub struct Recurrence {
    /// The SCC this recurrence corresponds to.
    pub scc: SccId,
    /// Operations on the recurrence (all members of the SCC).
    pub ops: Vec<OpId>,
    /// Maximum `latency/distance` ratio over the SCC's cycles.
    pub critical_ratio: CycleRatio,
}

impl Recurrence {
    /// The smallest integer `II` (in cycles) at which this recurrence can be
    /// scheduled on a single cluster.
    #[must_use]
    pub fn min_ii(&self) -> u32 {
        self.critical_ratio.ceil()
    }
}

/// Returns, for each operation, the SCC it belongs to, plus the component
/// list — an owned clone of the graph's cached analysis
/// ([`Ddg::sccs`]; borrow that directly to avoid the clone).
#[must_use]
pub fn condensation(ddg: &Ddg) -> StronglyConnectedComponents {
    ddg.sccs().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpClass;

    #[test]
    fn chain_has_singleton_components() {
        let mut b = DdgBuilder::new("chain");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        let d = b.op("c", OpClass::IntArith);
        b.dep(a, c, 1).dep(c, d, 1);
        let g = b.build().unwrap();
        let sccs = condensation(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.recurrences(&g).is_empty());
    }

    #[test]
    fn cycle_is_one_component() {
        let mut b = DdgBuilder::new("cyc");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        let d = b.op("c", OpClass::IntArith);
        let e = b.op("d", OpClass::IntArith);
        b.dep(a, c, 1)
            .dep(c, d, 1)
            .dep_dist(d, a, 1, 1)
            .dep(d, e, 1);
        let g = b.build().unwrap();
        let sccs = condensation(&g);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs.component_of(a), sccs.component_of(c));
        assert_eq!(sccs.component_of(a), sccs.component_of(d));
        assert_ne!(sccs.component_of(a), sccs.component_of(e));
        let recs = sccs.recurrences(&g);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ops.len(), 3);
        assert_eq!(recs[0].min_ii(), 3);
    }

    #[test]
    fn self_loop_is_a_recurrence() {
        let mut b = DdgBuilder::new("self");
        let a = b.op("acc", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let g = b.build().unwrap();
        let recs = condensation(&g).recurrences(&g);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].min_ii(), 3);
    }

    #[test]
    fn recurrences_sorted_most_critical_first() {
        let mut b = DdgBuilder::new("two-recs");
        // Light recurrence: 1-cycle latency, distance 1 → ratio 1.
        let a = b.op("a", OpClass::IntArith);
        b.flow_carried(a, a, 1);
        // Heavy recurrence: fp divide self-loop → ratio 18.
        let d = b.op("d", OpClass::FpDiv);
        b.flow_carried(d, d, 1);
        let g = b.build().unwrap();
        let recs = condensation(&g).recurrences(&g);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].min_ii(), 18);
        assert_eq!(recs[1].min_ii(), 1);
    }

    #[test]
    fn two_entangled_cycles_form_one_scc() {
        let mut b = DdgBuilder::new("theta");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        let d = b.op("c", OpClass::IntArith);
        b.dep(a, c, 1);
        b.dep_dist(c, a, 1, 1);
        b.dep(c, d, 1);
        b.dep_dist(d, c, 1, 2);
        let g = b.build().unwrap();
        let sccs = condensation(&g);
        assert_eq!(sccs.len(), 1);
        let recs = sccs.recurrences(&g);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ops.len(), 3);
        // Critical cycle is a↔b: latency 2 / distance 1 = 2 vs b↔c: 2/2 = 1.
        assert_eq!(recs[0].min_ii(), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut b = DdgBuilder::new("deep");
        let n = 100_000;
        let ids: Vec<_> = (0..n)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.dep(w[0], w[1], 1);
        }
        let g = b.build().unwrap();
        let sccs = condensation(&g);
        assert_eq!(sccs.len(), n);
    }
}
