//! Fluent construction of [`Ddg`]s.

use crate::ddg::{Ddg, DepEdge, DepKind, EdgeId, OpId, Operation};
use crate::error::BuildError;
use crate::op::OpClass;

/// Incrementally builds a [`Ddg`].
///
/// Operations are created first with [`DdgBuilder::op`]; dependences are
/// added with [`DdgBuilder::dep`] (distance 0, flow kind) or the more general
/// [`DdgBuilder::dep_full`]. By default the latency of a dependence is the
/// Table 1 latency of its *producer*; pass an explicit latency to model
/// ordering constraints or forwarding.
///
/// # Example
///
/// ```
/// use vliw_ir::{DdgBuilder, OpClass};
///
/// let mut b = DdgBuilder::new("dot-product");
/// let load_a = b.op("load a[i]", OpClass::FpMemory);
/// let load_b = b.op("load b[i]", OpClass::FpMemory);
/// let mul = b.op("a[i]*b[i]", OpClass::FpMul);
/// let acc = b.op("sum +=", OpClass::FpArith);
/// b.flow(load_a, mul);
/// b.flow(load_b, mul);
/// b.flow(mul, acc);
/// b.dep_full(acc, acc, vliw_ir::OpClass::FpArith.latency(), 1, vliw_ir::DepKind::Flow);
/// let ddg = b.build()?;
/// assert_eq!(ddg.num_ops(), 4);
/// assert_eq!(ddg.rec_mii(), 3); // the accumulator recurrence
/// # Ok::<(), vliw_ir::BuildError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DdgBuilder {
    name: String,
    ops: Vec<Operation>,
    edges: Vec<PendingEdge>,
}

#[derive(Debug, Clone, Copy)]
struct PendingEdge {
    src: OpId,
    dst: OpId,
    latency: u32,
    distance: u32,
    kind: DepKind,
}

impl DdgBuilder {
    /// Creates an empty builder for a loop called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds an operation and returns its identifier.
    pub fn op(&mut self, name: impl Into<String>, class: OpClass) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Operation::new(id, class, name));
        id
    }

    /// Number of operations added so far.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Adds a same-iteration dependence with an explicit latency.
    pub fn dep(&mut self, src: OpId, dst: OpId, latency: u32) -> &mut Self {
        self.dep_full(src, dst, latency, 0, DepKind::Flow)
    }

    /// Adds a dependence with explicit latency and iteration distance.
    pub fn dep_dist(&mut self, src: OpId, dst: OpId, latency: u32, distance: u32) -> &mut Self {
        self.dep_full(src, dst, latency, distance, DepKind::Flow)
    }

    /// Adds a same-iteration *flow* dependence whose latency is the
    /// producer's Table 1 latency — the common case for register values.
    ///
    /// # Panics
    ///
    /// Panics if `src` was not created by this builder.
    pub fn flow(&mut self, src: OpId, dst: OpId) -> &mut Self {
        let latency = self.ops[src.index()].latency();
        self.dep_full(src, dst, latency, 0, DepKind::Flow)
    }

    /// Adds a loop-carried *flow* dependence (producer-latency, distance
    /// `distance`).
    ///
    /// # Panics
    ///
    /// Panics if `src` was not created by this builder.
    pub fn flow_carried(&mut self, src: OpId, dst: OpId, distance: u32) -> &mut Self {
        let latency = self.ops[src.index()].latency();
        self.dep_full(src, dst, latency, distance, DepKind::Flow)
    }

    /// Adds a pure ordering dependence (no value communicated).
    pub fn order(&mut self, src: OpId, dst: OpId, latency: u32, distance: u32) -> &mut Self {
        self.dep_full(src, dst, latency, distance, DepKind::Order)
    }

    /// Adds a dependence with every field explicit.
    pub fn dep_full(
        &mut self,
        src: OpId,
        dst: OpId,
        latency: u32,
        distance: u32,
        kind: DepKind,
    ) -> &mut Self {
        self.edges.push(PendingEdge {
            src,
            dst,
            latency,
            distance,
            kind,
        });
        self
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownOp`] if an edge references an operation
    /// id this builder never produced, or [`BuildError::ZeroDistanceSelfLoop`]
    /// for a same-iteration self-dependence.
    pub fn build(self) -> Result<Ddg, BuildError> {
        let num_ops = self.ops.len();
        let mut edges = Vec::with_capacity(self.edges.len());
        for (i, e) in self.edges.iter().enumerate() {
            for end in [e.src, e.dst] {
                if end.index() >= num_ops {
                    return Err(BuildError::UnknownOp { op: end.0, num_ops });
                }
            }
            if e.src == e.dst && e.distance == 0 {
                return Err(BuildError::ZeroDistanceSelfLoop {
                    op: self.ops[e.src.index()].name().to_owned(),
                });
            }
            edges.push(DepEdge::new(
                EdgeId(i as u32),
                e.src,
                e.dst,
                e.latency,
                e.distance,
                e.kind,
            ));
        }
        Ok(Ddg::from_parts(self.name, self.ops, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_op() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        b.dep(a, OpId(42), 1);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnknownOp { op: 42, num_ops: 1 }
        );
    }

    #[test]
    fn rejects_zero_distance_self_loop() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        b.dep(a, a, 1);
        assert!(matches!(
            b.build(),
            Err(BuildError::ZeroDistanceSelfLoop { .. })
        ));
    }

    #[test]
    fn accepts_carried_self_loop() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.rec_mii(), 3);
    }

    #[test]
    fn flow_uses_producer_latency() {
        let mut b = DdgBuilder::new("t");
        let m = b.op("mul", OpClass::FpMul);
        let a = b.op("add", OpClass::FpArith);
        b.flow(m, a);
        let g = b.build().unwrap();
        assert_eq!(g.edges().next().unwrap().latency(), 6);
    }

    #[test]
    fn order_edges_are_not_flow() {
        let mut b = DdgBuilder::new("t");
        let s = b.op("store", OpClass::FpMemory);
        let l = b.op("load", OpClass::FpMemory);
        b.order(s, l, 1, 1);
        let g = b.build().unwrap();
        let e = g.edges().next().unwrap();
        assert!(!e.is_flow());
        assert_eq!(e.kind(), DepKind::Order);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = DdgBuilder::new("empty").build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.rec_mii(), 0);
    }
}
