//! Operation classes and the functional-unit kinds they occupy.

use std::fmt;

/// The kind of functional unit an operation occupies for one cycle when it
/// issues.
///
/// Mirrors the machine of the paper's evaluation (§5): each cluster holds one
/// integer FU, one floating-point FU and one memory port; inter-cluster
/// copies occupy a register bus owned by the interconnection network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Integer functional unit.
    Int,
    /// Floating-point functional unit.
    Fp,
    /// Memory port (loads and stores).
    Mem,
    /// Inter-cluster register bus (explicit copy operations).
    Bus,
}

impl FuKind {
    /// All functional-unit kinds that live *inside* a cluster.
    pub const CLUSTER_KINDS: [FuKind; 3] = [FuKind::Int, FuKind::Fp, FuKind::Mem];
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::Int => "int",
            FuKind::Fp => "fp",
            FuKind::Mem => "mem",
            FuKind::Bus => "bus",
        };
        f.write_str(s)
    }
}

/// Operation classes with the latencies and relative energies of the paper's
/// Table 1.
///
/// Latency is in cycles of the cluster the operation executes on (clusters
/// share one design, so cycle *counts* are frequency-independent; only the
/// cycle *time* changes across heterogeneous clusters). Energy is relative
/// to an integer add and is consumed in the executing cluster's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer load or store (Table 1 "Memory", INT column).
    IntMemory,
    /// Floating-point load or store (Table 1 "Memory", FP column).
    FpMemory,
    /// Integer arithmetic / logic.
    IntArith,
    /// Floating-point add/sub/compare.
    FpArith,
    /// Integer multiply.
    IntMul,
    /// Floating-point multiply.
    FpMul,
    /// Integer divide / modulo / sqrt.
    IntDiv,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// Inter-cluster register copy inserted by the scheduler.
    Copy,
}

impl OpClass {
    /// All "source program" classes, i.e. everything except the
    /// scheduler-inserted [`OpClass::Copy`].
    pub const SOURCE_CLASSES: [OpClass; 8] = [
        OpClass::IntMemory,
        OpClass::FpMemory,
        OpClass::IntArith,
        OpClass::FpArith,
        OpClass::IntMul,
        OpClass::FpMul,
        OpClass::IntDiv,
        OpClass::FpDiv,
    ];

    /// Latency in cycles (Table 1 of the paper).
    #[must_use]
    pub const fn latency(self) -> u32 {
        match self {
            OpClass::IntMemory | OpClass::FpMemory => 2,
            OpClass::IntArith => 1,
            OpClass::FpArith => 3,
            OpClass::IntMul => 2,
            OpClass::FpMul => 6,
            OpClass::IntDiv => 6,
            OpClass::FpDiv => 18,
            // One bus transfer; the extra inter-domain synchronisation cycle
            // is modelled by the scheduler, not here.
            OpClass::Copy => 1,
        }
    }

    /// Dynamic energy of one execution relative to an integer add
    /// (Table 1 of the paper). Copies are accounted on the bus instead and
    /// report `0` here.
    #[must_use]
    pub const fn relative_energy(self) -> f64 {
        match self {
            OpClass::IntMemory | OpClass::FpMemory => 1.0,
            OpClass::IntArith => 1.0,
            OpClass::FpArith => 1.2,
            OpClass::IntMul => 1.1,
            OpClass::FpMul => 1.5,
            OpClass::IntDiv => 1.4,
            OpClass::FpDiv => 2.0,
            OpClass::Copy => 0.0,
        }
    }

    /// The functional-unit kind this class occupies at issue.
    #[must_use]
    pub const fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IntMemory | OpClass::FpMemory => FuKind::Mem,
            OpClass::IntArith | OpClass::IntMul | OpClass::IntDiv => FuKind::Int,
            OpClass::FpArith | OpClass::FpMul | OpClass::FpDiv => FuKind::Fp,
            OpClass::Copy => FuKind::Bus,
        }
    }

    /// Whether the operation accesses the memory hierarchy.
    #[must_use]
    pub const fn is_memory(self) -> bool {
        matches!(self, OpClass::IntMemory | OpClass::FpMemory)
    }

    /// Whether this is a scheduler-inserted inter-cluster copy.
    #[must_use]
    pub const fn is_copy(self) -> bool {
        matches!(self, OpClass::Copy)
    }
}

impl OpClass {
    /// The class's stable mnemonic — the exact string [`fmt::Display`]
    /// prints and [`str::parse`] accepts, used by the on-disk corpus
    /// format.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            OpClass::IntMemory => "imem",
            OpClass::FpMemory => "fmem",
            OpClass::IntArith => "iadd",
            OpClass::FpArith => "fadd",
            OpClass::IntMul => "imul",
            OpClass::FpMul => "fmul",
            OpClass::IntDiv => "idiv",
            OpClass::FpDiv => "fdiv",
            OpClass::Copy => "copy",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing an [`OpClass`] or [`crate::DepKind`] mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMnemonicError {
    /// The rejected input.
    pub input: String,
    /// What was being parsed ("op class" / "dependence kind").
    pub what: &'static str,
}

impl fmt::Display for ParseMnemonicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} mnemonic `{}`", self.what, self.input)
    }
}

impl std::error::Error for ParseMnemonicError {}

impl std::str::FromStr for OpClass {
    type Err = ParseMnemonicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OpClass::SOURCE_CLASSES
            .into_iter()
            .chain([OpClass::Copy])
            .find(|c| c.as_str() == s)
            .ok_or_else(|| ParseMnemonicError {
                input: s.to_owned(),
                what: "op class",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies_match_paper() {
        // Table 1 of the paper, verbatim.
        assert_eq!(OpClass::IntMemory.latency(), 2);
        assert_eq!(OpClass::FpMemory.latency(), 2);
        assert_eq!(OpClass::IntArith.latency(), 1);
        assert_eq!(OpClass::FpArith.latency(), 3);
        assert_eq!(OpClass::IntMul.latency(), 2);
        assert_eq!(OpClass::FpMul.latency(), 6);
        assert_eq!(OpClass::IntDiv.latency(), 6);
        assert_eq!(OpClass::FpDiv.latency(), 18);
    }

    #[test]
    fn table1_energies_match_paper() {
        assert_eq!(OpClass::IntMemory.relative_energy(), 1.0);
        assert_eq!(OpClass::FpMemory.relative_energy(), 1.0);
        assert_eq!(OpClass::IntArith.relative_energy(), 1.0);
        assert_eq!(OpClass::FpArith.relative_energy(), 1.2);
        assert_eq!(OpClass::IntMul.relative_energy(), 1.1);
        assert_eq!(OpClass::FpMul.relative_energy(), 1.5);
        assert_eq!(OpClass::IntDiv.relative_energy(), 1.4);
        assert_eq!(OpClass::FpDiv.relative_energy(), 2.0);
    }

    #[test]
    fn fu_kind_routing() {
        assert_eq!(OpClass::IntMemory.fu_kind(), FuKind::Mem);
        assert_eq!(OpClass::FpMemory.fu_kind(), FuKind::Mem);
        assert_eq!(OpClass::IntArith.fu_kind(), FuKind::Int);
        assert_eq!(OpClass::IntMul.fu_kind(), FuKind::Int);
        assert_eq!(OpClass::IntDiv.fu_kind(), FuKind::Int);
        assert_eq!(OpClass::FpArith.fu_kind(), FuKind::Fp);
        assert_eq!(OpClass::FpMul.fu_kind(), FuKind::Fp);
        assert_eq!(OpClass::FpDiv.fu_kind(), FuKind::Fp);
        assert_eq!(OpClass::Copy.fu_kind(), FuKind::Bus);
    }

    #[test]
    fn memory_predicate() {
        for class in OpClass::SOURCE_CLASSES {
            assert_eq!(
                class.is_memory(),
                matches!(class, OpClass::IntMemory | OpClass::FpMemory)
            );
        }
        assert!(!OpClass::Copy.is_memory());
        assert!(OpClass::Copy.is_copy());
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for class in OpClass::SOURCE_CLASSES.into_iter().chain([OpClass::Copy]) {
            let s = class.to_string();
            assert!(!s.is_empty());
            assert!(seen.insert(s), "duplicate display name for {class:?}");
        }
        for kind in FuKind::CLUSTER_KINDS.into_iter().chain([FuKind::Bus]) {
            assert!(!kind.to_string().is_empty());
        }
    }
}
