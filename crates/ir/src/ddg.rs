//! Data-dependence graphs for loop bodies.

use std::fmt;

use crate::error::IrError;
use crate::op::{FuKind, OpClass};

/// Identifier of an operation inside one [`Ddg`].
///
/// Indices are dense: `OpId(i)` addresses the `i`-th operation of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    /// The operation's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a dependence edge inside one [`Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DepKind {
    /// Register flow dependence: the consumer reads the value the producer
    /// writes, so it is also a *communication* candidate when producer and
    /// consumer land in different clusters.
    #[default]
    Flow,
    /// Memory or control ordering dependence. It constrains the schedule but
    /// never moves a value between register files, so it costs no bus slot.
    Order,
}

/// One operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    id: OpId,
    class: OpClass,
    name: String,
}

impl Operation {
    pub(crate) fn new(id: OpId, class: OpClass, name: impl Into<String>) -> Self {
        Self {
            id,
            class,
            name: name.into(),
        }
    }

    /// The operation's identifier within its graph.
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The operation's class (latency/energy/FU routing).
    #[must_use]
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// Human-readable name used in diagnostics and DOT dumps.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue latency in cycles (Table 1).
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.class.latency()
    }

    /// The functional-unit kind this operation occupies.
    #[must_use]
    pub fn fu_kind(&self) -> FuKind {
        self.class.fu_kind()
    }
}

/// A dependence `src → dst` with a latency (cycles the consumer must wait
/// after the producer issues) and an iteration distance (`0` for
/// same-iteration, `k > 0` for a value carried across `k` iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    id: EdgeId,
    src: OpId,
    dst: OpId,
    latency: u32,
    distance: u32,
    kind: DepKind,
}

impl DepEdge {
    pub(crate) fn new(
        id: EdgeId,
        src: OpId,
        dst: OpId,
        latency: u32,
        distance: u32,
        kind: DepKind,
    ) -> Self {
        Self {
            id,
            src,
            dst,
            latency,
            distance,
            kind,
        }
    }

    /// The edge's identifier within its graph.
    #[must_use]
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// Producer operation.
    #[must_use]
    pub fn src(&self) -> OpId {
        self.src
    }

    /// Consumer operation.
    #[must_use]
    pub fn dst(&self) -> OpId {
        self.dst
    }

    /// Cycles the consumer must wait after the producer issues.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Iteration distance (`omega`).
    #[must_use]
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Dependence kind (register flow vs. pure ordering).
    #[must_use]
    pub fn kind(&self) -> DepKind {
        self.kind
    }

    /// Whether the edge carries a register value that must be communicated
    /// if its endpoints are assigned to different clusters.
    #[must_use]
    pub fn is_flow(&self) -> bool {
        self.kind == DepKind::Flow
    }
}

/// A loop-body data-dependence graph.
///
/// Construct one with [`crate::DdgBuilder`]; the builder validates endpoint
/// indices and rejects zero-distance self-loops, so a `Ddg` is always
/// structurally sound (it may still contain zero-distance *cycles*, which
/// [`Ddg::validate_schedulable`] reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ddg {
    name: String,
    ops: Vec<Operation>,
    edges: Vec<DepEdge>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
}

impl Ddg {
    pub(crate) fn from_parts(name: String, ops: Vec<Operation>, edges: Vec<DepEdge>) -> Self {
        let mut succ = vec![Vec::new(); ops.len()];
        let mut pred = vec![Vec::new(); ops.len()];
        for e in &edges {
            succ[e.src.index()].push(e.id);
            pred[e.dst.index()].push(e.id);
        }
        Self {
            name,
            ops,
            edges,
            succ,
            pred,
        }
    }

    /// The loop's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of dependence edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// The edge with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &DepEdge {
        &self.edges[id.index()]
    }

    /// Iterate over all operations.
    pub fn ops(&self) -> impl ExactSizeIterator<Item = &Operation> + '_ {
        self.ops.iter()
    }

    /// Iterate over all operation identifiers.
    pub fn op_ids(&self) -> impl ExactSizeIterator<Item = OpId> + Clone {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = &DepEdge> + '_ {
        self.edges.iter()
    }

    /// Outgoing edges of `id`.
    pub fn succs(&self, id: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succ[id.index()].iter().map(|e| &self.edges[e.index()])
    }

    /// Incoming edges of `id`.
    pub fn preds(&self, id: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.pred[id.index()].iter().map(|e| &self.edges[e.index()])
    }

    /// Number of operations that occupy functional-unit kind `kind`.
    #[must_use]
    pub fn count_fu(&self, kind: FuKind) -> usize {
        self.ops.iter().filter(|o| o.fu_kind() == kind).count()
    }

    /// Number of memory operations.
    #[must_use]
    pub fn count_memory_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.class().is_memory()).count()
    }

    /// Sum of Table 1 relative energies over all operations: the dynamic
    /// energy of one loop iteration in "integer-add units".
    #[must_use]
    pub fn iteration_energy(&self) -> f64 {
        self.ops.iter().map(|o| o.class().relative_energy()).sum()
    }

    /// Checks the graph can be modulo scheduled at *some* initiation
    /// interval: every dependence cycle must have positive total distance.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ZeroDistanceCycle`] naming an operation on a cycle
    /// whose edges all have distance zero; such a loop body has no valid
    /// schedule at any `II`.
    pub fn validate_schedulable(&self) -> Result<(), IrError> {
        // A zero-distance cycle is a cycle in the subgraph of distance-0
        // edges; detect via DFS three-colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.ops.len()];
        // Iterative DFS with explicit stack of (node, next-edge-index).
        for root in 0..self.ops.len() {
            if colour[root] != Colour::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            colour[root] = Colour::Grey;
            while let Some((u, next)) = stack.last().copied() {
                let succ_edges = &self.succ[u];
                if next < succ_edges.len() {
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let e = &self.edges[succ_edges[next].index()];
                    if e.distance() != 0 {
                        continue;
                    }
                    let v = e.dst().index();
                    match colour[v] {
                        Colour::White => {
                            colour[v] = Colour::Grey;
                            stack.push((v, 0));
                        }
                        Colour::Grey => {
                            return Err(IrError::ZeroDistanceCycle {
                                op: self.ops[v].name().to_owned(),
                            });
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[u] = Colour::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// The recurrence-constrained minimum initiation interval, in cycles of
    /// a homogeneous machine: `max` over all dependence cycles of
    /// `ceil(total latency / total distance)`.
    ///
    /// Returns `0` for acyclic graphs.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a zero-distance cycle (no finite `recMII`
    /// exists); call [`Ddg::validate_schedulable`] first to handle that case
    /// gracefully.
    #[must_use]
    pub fn rec_mii(&self) -> u32 {
        crate::ratio::min_feasible_ii(self)
            .expect("zero-distance cycle: graph is unschedulable at any II")
    }
}

/// A loop: a DDG plus the dynamic information the paper's models consume.
///
/// `trip_count` is the average number of iterations observed in the profile
/// of the reference homogeneous machine; `weight` is the fraction of whole-
/// program execution time this loop accounts for (the per-benchmark weights
/// in Table 2 are aggregates of these).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    ddg: Ddg,
    trip_count: u64,
    weight: f64,
}

impl Loop {
    /// Wraps a DDG with profile data.
    ///
    /// # Panics
    ///
    /// Panics if `trip_count == 0` or `weight` is not finite and positive.
    #[must_use]
    pub fn new(ddg: Ddg, trip_count: u64, weight: f64) -> Self {
        assert!(trip_count > 0, "a profiled loop ran at least once");
        assert!(
            weight.is_finite() && weight > 0.0,
            "loop weight must be positive and finite, got {weight}"
        );
        Self {
            ddg,
            trip_count,
            weight,
        }
    }

    /// The loop body's dependence graph.
    #[must_use]
    pub fn ddg(&self) -> &Ddg {
        &self.ddg
    }

    /// Average number of iterations per invocation.
    #[must_use]
    pub fn trip_count(&self) -> u64 {
        self.trip_count
    }

    /// Fraction of program execution time spent in this loop.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;

    fn chain(n: usize) -> Ddg {
        let mut b = DdgBuilder::new("chain");
        let ids: Vec<_> = (0..n)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.dep(w[0], w[1], 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = chain(4);
        assert_eq!(g.num_ops(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.succs(OpId(0)).count(), 1);
        assert_eq!(g.preds(OpId(0)).count(), 0);
        assert_eq!(g.preds(OpId(3)).count(), 1);
        assert_eq!(g.succs(OpId(3)).count(), 0);
        for e in g.edges() {
            assert!(g.succs(e.src()).any(|s| s.id() == e.id()));
            assert!(g.preds(e.dst()).any(|p| p.id() == e.id()));
        }
    }

    #[test]
    fn acyclic_graph_is_schedulable_with_zero_recmii() {
        let g = chain(5);
        g.validate_schedulable().unwrap();
        assert_eq!(g.rec_mii(), 0);
    }

    #[test]
    fn zero_distance_cycle_is_detected() {
        let mut b = DdgBuilder::new("bad");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1);
        b.dep(c, a, 1);
        let g = b.build().unwrap();
        let err = g.validate_schedulable().unwrap_err();
        assert!(matches!(err, IrError::ZeroDistanceCycle { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn carried_cycle_is_schedulable() {
        let mut b = DdgBuilder::new("carried");
        let a = b.op("a", OpClass::FpArith);
        let c = b.op("b", OpClass::FpArith);
        b.flow(a, c);
        b.flow_carried(c, a, 1);
        let g = b.build().unwrap();
        g.validate_schedulable().unwrap();
        // Two fp ops of latency 3 each around a distance-1 cycle.
        assert_eq!(g.rec_mii(), 6);
    }

    #[test]
    fn zero_distance_cycle_in_larger_component_is_found() {
        // A diamond with a distance-0 back edge hidden behind an OK branch.
        let mut b = DdgBuilder::new("bad2");
        let a = b.op("a", OpClass::IntArith);
        let x = b.op("x", OpClass::IntArith);
        let y = b.op("y", OpClass::IntArith);
        let z = b.op("z", OpClass::IntArith);
        b.dep(a, x, 0);
        b.dep(x, y, 0);
        b.dep(y, z, 0);
        b.dep(z, x, 1); // distance 0 → cycle x→y→z→x
        let g = b.build().unwrap();
        assert!(g.validate_schedulable().is_err());
    }

    #[test]
    fn fu_and_memory_counts() {
        let mut b = DdgBuilder::new("mix");
        b.op("l", OpClass::FpMemory);
        b.op("s", OpClass::IntMemory);
        b.op("f", OpClass::FpMul);
        b.op("i", OpClass::IntArith);
        let g = b.build().unwrap();
        assert_eq!(g.count_fu(FuKind::Mem), 2);
        assert_eq!(g.count_fu(FuKind::Fp), 1);
        assert_eq!(g.count_fu(FuKind::Int), 1);
        assert_eq!(g.count_memory_ops(), 2);
        let expected = 1.0 + 1.0 + 1.5 + 1.0;
        assert!((g.iteration_energy() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ran at least once")]
    fn loop_rejects_zero_trip_count() {
        let _ = Loop::new(chain(2), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn loop_rejects_bad_weight() {
        let _ = Loop::new(chain(2), 10, 0.0);
    }

    #[test]
    fn loop_accessors() {
        let l = Loop::new(chain(3), 100, 0.25);
        assert_eq!(l.trip_count(), 100);
        assert_eq!(l.weight(), 0.25);
        assert_eq!(l.ddg().num_ops(), 3);
    }
}
