//! Data-dependence graphs for loop bodies.
//!
//! # Storage and index stability
//!
//! A [`Ddg`] is stored densely: operations live in one `Vec` addressed by
//! [`OpId`], edges in one `Vec` addressed by [`EdgeId`], and the adjacency
//! is *compressed sparse row* (CSR) — one flat `Vec<EdgeId>` per direction
//! plus an offset table, so walking a node's successors touches one
//! contiguous slice instead of chasing per-node heap cells.
//!
//! The index invariants every layer above relies on:
//!
//! * **`OpId` order = insertion order = CSR row order.** `OpId(i)` is the
//!   `i`-th operation passed to the builder, row `i` of both CSR tables,
//!   and index `i` of every side table (cluster assignments, issue cycles,
//!   heights, …) in `vliw-sched` and `vliw-sim`.
//! * **`EdgeId` order = insertion order.** Within one CSR row the edge ids
//!   appear in ascending order, so iteration order over `succs`/`preds`
//!   is exactly the builder's edge insertion order.
//! * A `Ddg` is immutable after [`crate::DdgBuilder::build`]; the analysis
//!   caches below are therefore computed at most once per graph.
//!
//! # Analysis caches
//!
//! The modulo-scheduling pipeline re-analyses the same graph once per
//! candidate configuration and once per `IT` retry. The quantities that
//! depend only on the graph — strongly connected components, recurrences,
//! the distance-0 topological order, `recMII`, per-FU-kind op counts and
//! the iteration energy — are memoised on the `Ddg` itself (lazily, via
//! [`std::sync::OnceLock`], so construction stays cheap and the caches are
//! shared across threads).

use std::fmt;
use std::sync::OnceLock;

use crate::error::IrError;
use crate::op::{FuKind, OpClass};
use crate::scc::{Recurrence, StronglyConnectedComponents};
use crate::toposort::TopoError;

/// Identifier of an operation inside one [`Ddg`].
///
/// Indices are dense: `OpId(i)` addresses the `i`-th operation of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    /// The operation's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a dependence edge inside one [`Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DepKind {
    /// Register flow dependence: the consumer reads the value the producer
    /// writes, so it is also a *communication* candidate when producer and
    /// consumer land in different clusters.
    #[default]
    Flow,
    /// Memory or control ordering dependence. It constrains the schedule but
    /// never moves a value between register files, so it costs no bus slot.
    Order,
}

impl DepKind {
    /// The kind's stable mnemonic — the exact string [`str::parse`]
    /// accepts, used by the on-disk corpus format.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Order => "order",
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for DepKind {
    type Err = crate::op::ParseMnemonicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        [DepKind::Flow, DepKind::Order]
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| crate::op::ParseMnemonicError {
                input: s.to_owned(),
                what: "dependence kind",
            })
    }
}

/// One operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    id: OpId,
    class: OpClass,
    name: String,
}

impl Operation {
    pub(crate) fn new(id: OpId, class: OpClass, name: impl Into<String>) -> Self {
        Self {
            id,
            class,
            name: name.into(),
        }
    }

    /// The operation's identifier within its graph.
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The operation's class (latency/energy/FU routing).
    #[must_use]
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// Human-readable name used in diagnostics and DOT dumps.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue latency in cycles (Table 1).
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.class.latency()
    }

    /// The functional-unit kind this operation occupies.
    #[must_use]
    pub fn fu_kind(&self) -> FuKind {
        self.class.fu_kind()
    }
}

/// A dependence `src → dst` with a latency (cycles the consumer must wait
/// after the producer issues) and an iteration distance (`0` for
/// same-iteration, `k > 0` for a value carried across `k` iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    id: EdgeId,
    src: OpId,
    dst: OpId,
    latency: u32,
    distance: u32,
    kind: DepKind,
}

impl DepEdge {
    pub(crate) fn new(
        id: EdgeId,
        src: OpId,
        dst: OpId,
        latency: u32,
        distance: u32,
        kind: DepKind,
    ) -> Self {
        Self {
            id,
            src,
            dst,
            latency,
            distance,
            kind,
        }
    }

    /// The edge's identifier within its graph.
    #[must_use]
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// Producer operation.
    #[must_use]
    pub fn src(&self) -> OpId {
        self.src
    }

    /// Consumer operation.
    #[must_use]
    pub fn dst(&self) -> OpId {
        self.dst
    }

    /// Cycles the consumer must wait after the producer issues.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Iteration distance (`omega`).
    #[must_use]
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Dependence kind (register flow vs. pure ordering).
    #[must_use]
    pub fn kind(&self) -> DepKind {
        self.kind
    }

    /// Whether the edge carries a register value that must be communicated
    /// if its endpoints are assigned to different clusters.
    #[must_use]
    pub fn is_flow(&self) -> bool {
        self.kind == DepKind::Flow
    }
}

/// Lazily computed analyses of one immutable [`Ddg`].
///
/// Every field is a pure function of the graph, so cached values are
/// byte-identical to fresh recomputation; the caches only change *when*
/// the work happens, never the result.
#[derive(Debug, Clone, Default)]
struct AnalysisCaches {
    sccs: OnceLock<StronglyConnectedComponents>,
    recurrences: OnceLock<Vec<Recurrence>>,
    topo: OnceLock<Result<Vec<OpId>, TopoError>>,
    rec_mii: OnceLock<Option<u32>>,
    /// Op counts indexed `[int, fp, mem, bus]`.
    fu_counts: OnceLock<[usize; 4]>,
    iteration_energy: OnceLock<f64>,
}

/// A loop-body data-dependence graph.
///
/// Construct one with [`crate::DdgBuilder`]; the builder validates endpoint
/// indices and rejects zero-distance self-loops, so a `Ddg` is always
/// structurally sound (it may still contain zero-distance *cycles*, which
/// [`Ddg::validate_schedulable`] reports).
///
/// Adjacency is stored in CSR form and graph-level analyses (SCCs,
/// recurrences, topological order, `recMII`) are cached on the graph —
/// see the crate docs for the index-stability invariants.
#[derive(Debug, Clone)]
pub struct Ddg {
    name: String,
    ops: Vec<Operation>,
    edges: Vec<DepEdge>,
    /// CSR offsets: successors of op `i` are `succ_adj[succ_off[i]..succ_off[i + 1]]`.
    succ_off: Vec<u32>,
    succ_adj: Vec<EdgeId>,
    pred_off: Vec<u32>,
    pred_adj: Vec<EdgeId>,
    caches: AnalysisCaches,
}

/// Equality is structural — name, operations and edges. The CSR tables are
/// a function of the edges and the analysis caches a function of the whole
/// graph, so neither can distinguish two structurally equal graphs (and a
/// populated cache must not make a graph unequal to its unpopulated twin).
impl PartialEq for Ddg {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.ops == other.ops && self.edges == other.edges
    }
}

impl Eq for Ddg {}

impl Ddg {
    pub(crate) fn from_parts(name: String, ops: Vec<Operation>, edges: Vec<DepEdge>) -> Self {
        let (succ_off, succ_adj) = csr(ops.len(), &edges, |e| e.src.index());
        let (pred_off, pred_adj) = csr(ops.len(), &edges, |e| e.dst.index());
        Self {
            name,
            ops,
            edges,
            succ_off,
            succ_adj,
            pred_off,
            pred_adj,
            caches: AnalysisCaches::default(),
        }
    }

    /// The loop's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of dependence edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// The edge with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &DepEdge {
        &self.edges[id.index()]
    }

    /// Iterate over all operations.
    pub fn ops(&self) -> impl ExactSizeIterator<Item = &Operation> + '_ {
        self.ops.iter()
    }

    /// Iterate over all operation identifiers.
    pub fn op_ids(&self) -> impl ExactSizeIterator<Item = OpId> + Clone {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = &DepEdge> + '_ {
        self.edges.iter()
    }

    /// Identifiers of the outgoing edges of `id`, in insertion order — the
    /// raw CSR row, for allocation-free traversals.
    #[must_use]
    pub fn succ_edge_ids(&self, id: OpId) -> &[EdgeId] {
        let i = id.index();
        &self.succ_adj[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Identifiers of the incoming edges of `id`, in insertion order.
    #[must_use]
    pub fn pred_edge_ids(&self, id: OpId) -> &[EdgeId] {
        let i = id.index();
        &self.pred_adj[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Outgoing edges of `id`.
    pub fn succs(&self, id: OpId) -> impl ExactSizeIterator<Item = &DepEdge> + '_ {
        self.succ_edge_ids(id)
            .iter()
            .map(|e| &self.edges[e.index()])
    }

    /// Incoming edges of `id`.
    pub fn preds(&self, id: OpId) -> impl ExactSizeIterator<Item = &DepEdge> + '_ {
        self.pred_edge_ids(id)
            .iter()
            .map(|e| &self.edges[e.index()])
    }

    /// Number of operations that occupy functional-unit kind `kind`.
    #[must_use]
    pub fn count_fu(&self, kind: FuKind) -> usize {
        let index = |k: FuKind| match k {
            FuKind::Int => 0usize,
            FuKind::Fp => 1,
            FuKind::Mem => 2,
            FuKind::Bus => 3,
        };
        let counts = self.caches.fu_counts.get_or_init(|| {
            let mut counts = [0usize; 4];
            for op in &self.ops {
                counts[index(op.fu_kind())] += 1;
            }
            counts
        });
        counts[index(kind)]
    }

    /// Number of memory operations.
    #[must_use]
    pub fn count_memory_ops(&self) -> usize {
        // Memory operations are exactly the ops routed to memory ports.
        self.count_fu(FuKind::Mem)
    }

    /// Sum of Table 1 relative energies over all operations: the dynamic
    /// energy of one loop iteration in "integer-add units".
    #[must_use]
    pub fn iteration_energy(&self) -> f64 {
        *self
            .caches
            .iteration_energy
            .get_or_init(|| self.ops.iter().map(|o| o.class().relative_energy()).sum())
    }

    /// The strongly connected components of this graph, computed once and
    /// cached (the partitioner consults them on every scheduling attempt).
    #[must_use]
    pub fn sccs(&self) -> &StronglyConnectedComponents {
        self.caches
            .sccs
            .get_or_init(|| StronglyConnectedComponents::compute(self))
    }

    /// The non-trivial recurrences of this graph, most critical first
    /// (computed once and cached; see
    /// [`StronglyConnectedComponents::recurrences`]).
    #[must_use]
    pub fn recurrences(&self) -> &[Recurrence] {
        self.caches
            .recurrences
            .get_or_init(|| self.sccs().recurrences(self))
    }

    /// The deterministic Kahn topological order of the distance-0 subgraph,
    /// computed once and cached (the partition refiner evaluates hundreds
    /// of candidate moves per loop, each needing this order).
    ///
    /// # Errors
    ///
    /// Returns [`TopoError`] when the distance-0 subgraph is cyclic (the
    /// loop is unschedulable at any `II`).
    pub fn topo_order(&self) -> Result<&[OpId], TopoError> {
        match self
            .caches
            .topo
            .get_or_init(|| crate::toposort::compute_topological_order(self))
        {
            Ok(order) => Ok(order),
            Err(e) => Err(e.clone()),
        }
    }

    /// Checks the graph can be modulo scheduled at *some* initiation
    /// interval: every dependence cycle must have positive total distance.
    ///
    /// A zero-distance cycle is exactly a cycle of the distance-0 subgraph,
    /// so this is answered from the cached topological order — the check is
    /// O(1) after the first call on a graph.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ZeroDistanceCycle`] naming an operation on a cycle
    /// whose edges all have distance zero; such a loop body has no valid
    /// schedule at any `II`.
    pub fn validate_schedulable(&self) -> Result<(), IrError> {
        match self.topo_order() {
            Ok(_) => Ok(()),
            Err(e) => Err(IrError::ZeroDistanceCycle { op: e.op }),
        }
    }

    /// The recurrence-constrained minimum initiation interval, in cycles of
    /// a homogeneous machine: `max` over all dependence cycles of
    /// `ceil(total latency / total distance)`.
    ///
    /// Returns `0` for acyclic graphs.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a zero-distance cycle (no finite `recMII`
    /// exists); call [`Ddg::validate_schedulable`] first to handle that case
    /// gracefully.
    #[must_use]
    pub fn rec_mii(&self) -> u32 {
        self.caches
            .rec_mii
            .get_or_init(|| crate::ratio::compute_min_feasible_ii(self))
            .expect("zero-distance cycle: graph is unschedulable at any II")
    }

    /// Cached `recMII`, or `None` when a zero-distance cycle makes the loop
    /// unschedulable (the non-panicking form of [`Ddg::rec_mii`]).
    #[must_use]
    pub fn rec_mii_checked(&self) -> Option<u32> {
        *self
            .caches
            .rec_mii
            .get_or_init(|| crate::ratio::compute_min_feasible_ii(self))
    }
}

fn csr(
    num_ops: usize,
    edges: &[DepEdge],
    row: impl Fn(&DepEdge) -> usize,
) -> (Vec<u32>, Vec<EdgeId>) {
    build_csr(num_ops, edges, EdgeId(0), row, |_, e| e.id)
}

/// Builds one compressed-sparse-row direction over `items`: an offset
/// table (`num_rows + 1` entries, row `r`'s elements at
/// `adj[off[r]..off[r + 1]]`) plus the flat adjacency array, **stable in
/// item order within each row** — the layout contract every CSR graph in
/// the workspace shares ([`Ddg`] here, `ExtGraph` in `vliw-sched`).
///
/// `row` maps an item to its row, `elem(i, item)` to the stored adjacency
/// element (`fill` is an arbitrary placeholder overwritten before use).
///
/// # Panics
///
/// Panics if `row` returns an index `>= num_rows` or there are more than
/// `u32::MAX` items.
pub fn build_csr<T, A: Copy>(
    num_rows: usize,
    items: &[T],
    fill: A,
    row: impl Fn(&T) -> usize,
    elem: impl Fn(u32, &T) -> A,
) -> (Vec<u32>, Vec<A>) {
    assert!(
        u32::try_from(items.len()).is_ok(),
        "CSR item count fits u32"
    );
    let mut off = vec![0u32; num_rows + 1];
    for t in items {
        off[row(t) + 1] += 1;
    }
    for i in 0..num_rows {
        off[i + 1] += off[i];
    }
    let mut adj = vec![fill; items.len()];
    let mut cursor = off.clone();
    for (i, t) in items.iter().enumerate() {
        let r = row(t);
        adj[cursor[r] as usize] = elem(i as u32, t);
        cursor[r] += 1;
    }
    (off, adj)
}

/// A loop: a DDG plus the dynamic information the paper's models consume.
///
/// `trip_count` is the average number of iterations observed in the profile
/// of the reference homogeneous machine; `weight` is the fraction of whole-
/// program execution time this loop accounts for (the per-benchmark weights
/// in Table 2 are aggregates of these).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    ddg: Ddg,
    trip_count: u64,
    weight: f64,
}

impl Loop {
    /// Wraps a DDG with profile data.
    ///
    /// # Panics
    ///
    /// Panics if `trip_count == 0` or `weight` is not finite and positive.
    #[must_use]
    pub fn new(ddg: Ddg, trip_count: u64, weight: f64) -> Self {
        assert!(trip_count > 0, "a profiled loop ran at least once");
        assert!(
            weight.is_finite() && weight > 0.0,
            "loop weight must be positive and finite, got {weight}"
        );
        Self {
            ddg,
            trip_count,
            weight,
        }
    }

    /// The loop body's dependence graph.
    #[must_use]
    pub fn ddg(&self) -> &Ddg {
        &self.ddg
    }

    /// Average number of iterations per invocation.
    #[must_use]
    pub fn trip_count(&self) -> u64 {
        self.trip_count
    }

    /// Fraction of program execution time spent in this loop.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;

    fn chain(n: usize) -> Ddg {
        let mut b = DdgBuilder::new("chain");
        let ids: Vec<_> = (0..n)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.dep(w[0], w[1], 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = chain(4);
        assert_eq!(g.num_ops(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.succs(OpId(0)).count(), 1);
        assert_eq!(g.preds(OpId(0)).count(), 0);
        assert_eq!(g.preds(OpId(3)).count(), 1);
        assert_eq!(g.succs(OpId(3)).count(), 0);
        for e in g.edges() {
            assert!(g.succs(e.src()).any(|s| s.id() == e.id()));
            assert!(g.preds(e.dst()).any(|p| p.id() == e.id()));
        }
    }

    #[test]
    fn acyclic_graph_is_schedulable_with_zero_recmii() {
        let g = chain(5);
        g.validate_schedulable().unwrap();
        assert_eq!(g.rec_mii(), 0);
    }

    #[test]
    fn zero_distance_cycle_is_detected() {
        let mut b = DdgBuilder::new("bad");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1);
        b.dep(c, a, 1);
        let g = b.build().unwrap();
        let err = g.validate_schedulable().unwrap_err();
        assert!(matches!(err, IrError::ZeroDistanceCycle { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn carried_cycle_is_schedulable() {
        let mut b = DdgBuilder::new("carried");
        let a = b.op("a", OpClass::FpArith);
        let c = b.op("b", OpClass::FpArith);
        b.flow(a, c);
        b.flow_carried(c, a, 1);
        let g = b.build().unwrap();
        g.validate_schedulable().unwrap();
        // Two fp ops of latency 3 each around a distance-1 cycle.
        assert_eq!(g.rec_mii(), 6);
    }

    #[test]
    fn zero_distance_cycle_in_larger_component_is_found() {
        // A diamond with a distance-0 back edge hidden behind an OK branch.
        let mut b = DdgBuilder::new("bad2");
        let a = b.op("a", OpClass::IntArith);
        let x = b.op("x", OpClass::IntArith);
        let y = b.op("y", OpClass::IntArith);
        let z = b.op("z", OpClass::IntArith);
        b.dep(a, x, 0);
        b.dep(x, y, 0);
        b.dep(y, z, 0);
        b.dep(z, x, 1); // distance 0 → cycle x→y→z→x
        let g = b.build().unwrap();
        assert!(g.validate_schedulable().is_err());
    }

    #[test]
    fn fu_and_memory_counts() {
        let mut b = DdgBuilder::new("mix");
        b.op("l", OpClass::FpMemory);
        b.op("s", OpClass::IntMemory);
        b.op("f", OpClass::FpMul);
        b.op("i", OpClass::IntArith);
        let g = b.build().unwrap();
        assert_eq!(g.count_fu(FuKind::Mem), 2);
        assert_eq!(g.count_fu(FuKind::Fp), 1);
        assert_eq!(g.count_fu(FuKind::Int), 1);
        assert_eq!(g.count_memory_ops(), 2);
        let expected = 1.0 + 1.0 + 1.5 + 1.0;
        assert!((g.iteration_energy() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ran at least once")]
    fn loop_rejects_zero_trip_count() {
        let _ = Loop::new(chain(2), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn loop_rejects_bad_weight() {
        let _ = Loop::new(chain(2), 10, 0.0);
    }

    #[test]
    fn loop_accessors() {
        let l = Loop::new(chain(3), 100, 0.25);
        assert_eq!(l.trip_count(), 100);
        assert_eq!(l.weight(), 0.25);
        assert_eq!(l.ddg().num_ops(), 3);
    }
}
