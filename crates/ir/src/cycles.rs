//! Elementary-circuit enumeration (Johnson's algorithm).
//!
//! The partitioner mostly reasons about recurrences at SCC granularity
//! ([`crate::StronglyConnectedComponents::recurrences`]), but tests,
//! diagnostics and the Figure 4 example need the actual circuits. Since the
//! number of elementary circuits can be exponential, enumeration takes a
//! [`CircuitLimit`] and stops early once reached.

use std::collections::HashSet;

use crate::ddg::{Ddg, OpId};
use crate::scc::StronglyConnectedComponents;

/// Bound on how many circuits to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitLimit(pub usize);

impl Default for CircuitLimit {
    fn default() -> Self {
        CircuitLimit(10_000)
    }
}

/// An elementary dependence circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    /// Operations on the circuit, in traversal order.
    pub ops: Vec<OpId>,
    /// Total latency around the circuit.
    pub latency: u32,
    /// Total iteration distance around the circuit.
    pub distance: u32,
}

impl Circuit {
    /// `ceil(latency / distance)`: the smallest `II` this circuit admits.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's distance is zero (unschedulable).
    #[must_use]
    pub fn min_ii(&self) -> u32 {
        assert!(
            self.distance > 0,
            "zero-distance circuit has no feasible II"
        );
        self.latency.div_ceil(self.distance)
    }
}

/// Enumerates up to `limit` elementary circuits of `ddg`.
///
/// Circuits are discovered per strongly connected component with a
/// Johnson-style blocked DFS. The traversal is deterministic: nodes are
/// visited in id order.
#[must_use]
pub fn elementary_circuits(ddg: &Ddg, limit: CircuitLimit) -> Vec<Circuit> {
    let sccs = StronglyConnectedComponents::compute(ddg);
    let mut out = Vec::new();
    for (_, members) in sccs.iter() {
        if out.len() >= limit.0 {
            break;
        }
        if members.len() == 1 {
            // Self-loops only.
            let v = members[0];
            for e in ddg.succs(v) {
                if e.dst() == v {
                    out.push(Circuit {
                        ops: vec![v],
                        latency: e.latency(),
                        distance: e.distance(),
                    });
                    if out.len() >= limit.0 {
                        break;
                    }
                }
            }
            continue;
        }
        enumerate_component(ddg, members, limit, &mut out);
    }
    out
}

fn enumerate_component(ddg: &Ddg, members: &[OpId], limit: CircuitLimit, out: &mut Vec<Circuit>) {
    let member_set: HashSet<OpId> = members.iter().copied().collect();
    let mut sorted = members.to_vec();
    sorted.sort();
    // For each start node s (ascending), find circuits whose minimum node is
    // s, restricting the search to nodes ≥ s inside the SCC.
    for (si, &s) in sorted.iter().enumerate() {
        if out.len() >= limit.0 {
            return;
        }
        let allowed: HashSet<OpId> = sorted[si..].iter().copied().collect();
        let mut path: Vec<(OpId, u32, u32)> = vec![(s, 0, 0)]; // (node, lat-in, dist-in)
        let mut on_path: HashSet<OpId> = HashSet::from([s]);
        dfs(
            ddg,
            s,
            s,
            &member_set,
            &allowed,
            &mut path,
            &mut on_path,
            limit,
            out,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    ddg: &Ddg,
    start: OpId,
    current: OpId,
    member_set: &HashSet<OpId>,
    allowed: &HashSet<OpId>,
    path: &mut Vec<(OpId, u32, u32)>,
    on_path: &mut HashSet<OpId>,
    limit: CircuitLimit,
    out: &mut Vec<Circuit>,
) {
    if out.len() >= limit.0 {
        return;
    }
    let mut succs: Vec<_> = ddg
        .succs(current)
        .filter(|e| member_set.contains(&e.dst()) && allowed.contains(&e.dst()))
        .collect();
    succs.sort_by_key(|e| (e.dst(), e.id()));
    for e in succs {
        let next = e.dst();
        if next == start {
            // Completed a circuit (length ≥ 2 here; self-loops handled
            // separately unless start==current at path length 1).
            if path.len() >= 2 || current != start {
                let latency: u32 = path.iter().map(|&(_, l, _)| l).sum::<u32>() + e.latency();
                let distance: u32 = path.iter().map(|&(_, _, d)| d).sum::<u32>() + e.distance();
                out.push(Circuit {
                    ops: path.iter().map(|&(n, _, _)| n).collect(),
                    latency,
                    distance,
                });
                if out.len() >= limit.0 {
                    return;
                }
            }
            continue;
        }
        if on_path.contains(&next) {
            continue;
        }
        path.push((next, e.latency(), e.distance()));
        on_path.insert(next);
        dfs(
            ddg, start, next, member_set, allowed, path, on_path, limit, out,
        );
        on_path.remove(&next);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpClass;

    #[test]
    fn single_triangle() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        let d = b.op("c", OpClass::IntArith);
        b.dep(a, c, 1).dep(c, d, 2).dep_dist(d, a, 3, 2);
        let g = b.build().unwrap();
        let circuits = elementary_circuits(&g, CircuitLimit::default());
        assert_eq!(circuits.len(), 1);
        let c0 = &circuits[0];
        assert_eq!(c0.ops.len(), 3);
        assert_eq!(c0.latency, 6);
        assert_eq!(c0.distance, 2);
        assert_eq!(c0.min_ii(), 3);
    }

    #[test]
    fn self_loop_circuit() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::FpArith);
        b.dep_dist(a, a, 3, 1);
        let g = b.build().unwrap();
        let circuits = elementary_circuits(&g, CircuitLimit::default());
        assert_eq!(circuits.len(), 1);
        assert_eq!(circuits[0].ops, vec![a]);
        assert_eq!(circuits[0].min_ii(), 3);
    }

    #[test]
    fn theta_graph_has_two_circuits() {
        // a→b with two back edges b→a (different distances).
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1);
        b.dep_dist(c, a, 1, 1);
        b.dep_dist(c, a, 5, 3);
        let g = b.build().unwrap();
        let mut iis: Vec<u32> = elementary_circuits(&g, CircuitLimit::default())
            .iter()
            .map(Circuit::min_ii)
            .collect();
        iis.sort_unstable();
        assert_eq!(iis, vec![2, 2]); // (1+1)/1=2 and (1+5)/3=2
    }

    #[test]
    fn limit_truncates_enumeration() {
        // Complete-ish digraph on 6 nodes has many circuits.
        let mut b = DdgBuilder::new("t");
        let ids: Vec<_> = (0..6)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    b.dep_dist(u, v, 1, 1);
                }
            }
        }
        let g = b.build().unwrap();
        let circuits = elementary_circuits(&g, CircuitLimit(7));
        assert_eq!(circuits.len(), 7);
    }

    #[test]
    fn circuits_match_scc_critical_ratio() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        let d = b.op("c", OpClass::IntArith);
        b.dep(a, c, 2).dep_dist(c, a, 2, 1);
        b.dep(c, d, 4).dep_dist(d, c, 4, 2);
        let g = b.build().unwrap();
        let worst = elementary_circuits(&g, CircuitLimit::default())
            .iter()
            .map(Circuit::min_ii)
            .max()
            .unwrap();
        assert_eq!(worst, g.rec_mii());
    }

    #[test]
    #[should_panic(expected = "zero-distance circuit")]
    fn zero_distance_circuit_min_ii_panics() {
        let c = Circuit {
            ops: vec![OpId(0)],
            latency: 3,
            distance: 0,
        };
        let _ = c.min_ii();
    }
}
