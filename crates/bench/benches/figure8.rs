//! Figure 8 — ED² sensitivity to the ICN/cache energy shares — plus a
//! Criterion measurement of energy-model calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use heterovliw_core::Study;
use std::hint::black_box;
use vliw_bench::{dump_json, format_bar};
use vliw_machine::{MachineDesign, Time};
use vliw_power::{EnergyShares, PowerModel, ReferenceProfile};

const LOOPS: usize = 16;

fn print_figure8() {
    println!("\n== Figure 8: ED2 vs ICN/cache energy shares ==");
    let mut all = Vec::new();
    for buses in [1u32, 2] {
        println!("-- {buses} bus(es) --");
        let rows = Study::new()
            .with_loops_per_benchmark(LOOPS)
            .with_buses(buses)
            .figure8()
            .expect("pipeline runs");
        for r in &rows {
            let label = format!(
                ".{:02} / {:.2}",
                (r.icn_share * 100.0) as u32,
                r.cache_share
            );
            println!("{}", format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure8", &all);
}

fn bench_calibration(c: &mut Criterion) {
    print_figure8();
    let design = MachineDesign::paper_machine(1);
    let profile = ReferenceProfile {
        weighted_ins: 1_000_000.0,
        comms: 120_000,
        mem_accesses: 300_000,
        exec_time: Time::from_ns(500_000.0),
    };
    c.bench_function("power_model_calibrate", |b| {
        b.iter(|| PowerModel::calibrate(design, black_box(EnergyShares::PAPER), &profile));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_calibration
}
criterion_main!(benches);
