//! Figure 7 — ED² sensitivity to the number of supported frequencies —
//! plus a Criterion measurement of clock selection under a discrete menu.

use criterion::{criterion_group, criterion_main, Criterion};
use heterovliw_core::Study;
use std::hint::black_box;
use vliw_bench::{dump_json, format_bar};
use vliw_machine::{ClockedConfig, FrequencyMenu, MachineDesign, Time};
use vliw_sched::timing::LoopClocks;

const LOOPS: usize = 16;

fn print_figure7() {
    println!("\n== Figure 7: ED2 vs number of supported frequencies ==");
    let mut all = Vec::new();
    for buses in [1u32, 2] {
        println!("-- {buses} bus(es) --");
        let rows = Study::new()
            .with_loops_per_benchmark(LOOPS)
            .with_buses(buses)
            .figure7()
            .expect("pipeline runs");
        for r in &rows {
            println!("{}", format_bar(&r.menu, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure7", &all);
}

fn bench_clock_selection(c: &mut Criterion) {
    print_figure7();
    let design = MachineDesign::paper_machine(1);
    let config = ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5));
    let menu = FrequencyMenu::uniform(16);
    c.bench_function("loop_clocks_select_16freqs", |b| {
        b.iter(|| LoopClocks::select(&config, &menu, black_box(Time::from_ns(6.0))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_clock_selection
}
criterion_main!(benches);
