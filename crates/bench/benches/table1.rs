//! Table 1 — instruction latencies and relative energies — plus a
//! Criterion measurement of the `recMII` kernel that consumes them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vliw_ir::{DdgBuilder, OpClass};

fn print_table1() {
    println!("\n== Table 1: latency and relative energy per instruction class ==");
    println!("{:<24} {:>7} {:>7}", "class", "latency", "energy");
    for class in OpClass::SOURCE_CLASSES {
        println!(
            "{:<24} {:>7} {:>7.1}",
            class.to_string(),
            class.latency(),
            class.relative_energy()
        );
    }
}

fn bench_rec_mii(c: &mut Criterion) {
    print_table1();
    // A representative DDG: a 24-op chain with three nested recurrences.
    let mut b = DdgBuilder::new("bench");
    let ids: Vec<_> = (0..24)
        .map(|i| {
            b.op(
                format!("n{i}"),
                if i % 3 == 0 {
                    OpClass::FpMul
                } else {
                    OpClass::FpArith
                },
            )
        })
        .collect();
    for w in ids.windows(2) {
        b.flow(w[0], w[1]);
    }
    b.flow_carried(ids[7], ids[2], 1);
    b.flow_carried(ids[15], ids[9], 2);
    b.flow_carried(ids[23], ids[0], 4);
    let ddg = b.build().unwrap();
    c.bench_function("rec_mii_24op_3rec", |bench| {
        bench.iter(|| black_box(&ddg).rec_mii());
    });
}

criterion_group!(benches, bench_rec_mii);
criterion_main!(benches);
