//! Table 2 — % execution time per constraint class — plus a Criterion
//! measurement of loop classification over a whole benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vliw_bench::dump_json;
use vliw_machine::MachineDesign;
use vliw_workloads::{classify, generate, spec_fp2000, suite};

fn print_table2() {
    println!("\n== Table 2: % execution time per constraint class ==");
    let rows = heterovliw_core::explore::experiments::table2(&suite(24));
    println!(
        "{:<14} {:>14} {:>26} {:>18}",
        "benchmark", "recMII<resMII", "resMII<=recMII<1.3resMII", "1.3resMII<=recMII"
    );
    for r in &rows {
        println!(
            "{:<14} {:>13.2}% {:>25.2}% {:>17.2}%",
            r.benchmark, r.resource_pct, r.borderline_pct, r.recurrence_pct
        );
    }
    dump_json("table2", &rows);
}

fn bench_classification(c: &mut Criterion) {
    print_table2();
    let design = MachineDesign::paper_machine(1);
    let bench = generate(&spec_fp2000()[8], 24);
    c.bench_function("classify_sixtrack_24loops", |b| {
        b.iter(|| {
            for l in &bench.loops {
                black_box(classify(l.ddg(), design));
            }
        });
    });
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
