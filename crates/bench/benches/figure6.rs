//! Figure 6 — ED² of the heterogeneous approach normalised to the optimum
//! homogeneous design, per benchmark, for 1 and 2 buses — plus a Criterion
//! measurement of the heterogeneous scheduling kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use heterovliw_core::explore::experiments::mean_normalized;
use heterovliw_core::Study;
use std::hint::black_box;
use vliw_bench::{dump_json, format_bar};
use vliw_machine::{ClockedConfig, MachineDesign, Time};
use vliw_sched::{schedule_loop, ScheduleOptions};
use vliw_workloads::{generate, spec_fp2000};

/// Loops per benchmark for the printed figure (paper scale ÷ ~17 to keep
/// `cargo bench` interactive; run the `paper` binary with `--loops 400`
/// for full scale).
const LOOPS: usize = 24;

fn print_figure6() {
    println!("\n== Figure 6: ED2 normalised to optimum homogeneous ==");
    let mut all = Vec::new();
    for buses in [1u32, 2] {
        println!("-- {buses} bus(es) --");
        let rows = Study::new()
            .with_loops_per_benchmark(LOOPS)
            .with_buses(buses)
            .figure6()
            .expect("pipeline runs");
        for r in &rows {
            println!("{}", format_bar(&r.benchmark, r.ed2_normalized));
        }
        println!("{}", format_bar("mean", mean_normalized(&rows)));
        all.extend(rows);
    }
    dump_json("figure6", &all);
}

fn bench_hetero_scheduling(c: &mut Criterion) {
    print_figure6();
    // Kernel: heterogeneous modulo scheduling of one sixtrack loop.
    let design = MachineDesign::paper_machine(1);
    let bench = generate(&spec_fp2000()[8], 4);
    let config = ClockedConfig::heterogeneous(design, Time::from_ns(0.95), 1, Time::from_ns(1.25));
    let opts = ScheduleOptions::default();
    let ddg = bench.loops[0].ddg();
    c.bench_function("schedule_hetero_sixtrack_loop", |b| {
        b.iter(|| schedule_loop(black_box(ddg), &config, None, &opts).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hetero_scheduling
}
criterion_main!(benches);
