//! Figure 9 — ED² sensitivity to leakage shares — plus a Criterion
//! measurement of whole-configuration energy estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use heterovliw_core::Study;
use std::hint::black_box;
use vliw_bench::{dump_json, format_bar};
use vliw_machine::{ClockedConfig, MachineDesign, Time};
use vliw_power::{EnergyShares, PowerModel, ReferenceProfile, UsageProfile};

const LOOPS: usize = 16;

fn print_figure9() {
    println!("\n== Figure 9: ED2 vs leakage shares (cluster/ICN/cache) ==");
    let mut all = Vec::new();
    for buses in [1u32, 2] {
        println!("-- {buses} bus(es) --");
        let rows = Study::new()
            .with_loops_per_benchmark(LOOPS)
            .with_buses(buses)
            .figure9()
            .expect("pipeline runs");
        for r in &rows {
            let label = format!(
                "{:.2}/{:.2}/{:.2}",
                r.leak_cluster, r.leak_icn, r.leak_cache
            );
            println!("{}", format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure9", &all);
}

fn bench_energy_estimate(c: &mut Criterion) {
    print_figure9();
    let design = MachineDesign::paper_machine(1);
    let profile = ReferenceProfile {
        weighted_ins: 1_000_000.0,
        comms: 120_000,
        mem_accesses: 300_000,
        exec_time: Time::from_ns(500_000.0),
    };
    let power = PowerModel::calibrate(design, EnergyShares::PAPER, &profile);
    let config = ClockedConfig::heterogeneous(design, Time::from_ns(0.95), 1, Time::from_ns(1.25));
    let usage = UsageProfile::homogeneous(&profile, design.num_clusters);
    c.bench_function("estimate_energy_hetero", |b| {
        b.iter(|| power.estimate_energy(black_box(&config), &usage));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_energy_estimate
}
criterion_main!(benches);
