//! `paper` — regenerate the tables and figures of the CGO 2007 paper,
//! and manage on-disk workload corpora.
//!
//! ```text
//! Usage: paper [EXPERIMENT] [--experiment NAME] [--loops-per-benchmark N]
//!              [--buses 1|2|both] [--jobs N] [--seed S]
//!        paper search          [--strategy hillclimb|anneal|ga|exhaustive]
//!                              [--budget N] [--space paper|extended]
//!                              [--seed S] [--buses B] [--jobs N]
//!        paper corpus dump     [--out FILE]  [--loops-per-benchmark N]
//!        paper corpus schedule [--in FILE]   [--jobs N] [--loops-per-benchmark N]
//!        paper corpus stats    [--in FILE]   [--loops-per-benchmark N]
//!
//! EXPERIMENT: table1 | table2 | figure6 | figure7 | figure8 | figure9 |
//!             schedbench | familysweep | search | searchbench | all
//!             (default: all — which runs the table/figure set; search and
//!             the bench experiments are invoked explicitly. Positional
//!             and --experiment are equivalent.)
//! --loops-per-benchmark N
//!             loops generated per benchmark (default 40 — the interactive
//!             10x scale-down; ~400 reproduces the paper's suite size).
//!             `--loops N` is an accepted shorthand.
//! --buses B   bus configurations to run (default both)
//! --jobs N    worker threads for the exploration pipeline
//!             (default 0 = available parallelism; absurd values are
//!             clamped with a warning; output is identical for every N)
//! --seed S    global seed threaded through workload generation and the
//!             search strategies (default 0, which reproduces the
//!             historical fixed-seed suites bit for bit — all committed
//!             golden fixtures and baselines use it)
//! --strategy NAME
//!             search optimizer (default hillclimb)
//! --budget N  distinct candidate evaluations the search may spend
//!             (default 64; memoised repeats are free)
//! --space K   search space: `paper` (the 20-point §3.3 grid, first bus
//!             of --buses) or `extended` (frequencies × speed split ×
//!             explicit voltages × every bus of --buses; default paper)
//! --out FILE  where `corpus dump` writes (default
//!             target/paper-results/corpus.json)
//! --in FILE   corpus file for `corpus schedule` / `corpus stats`; without
//!             it, the equivalent in-memory suite is used, and the output
//!             is byte-identical to a dump-then-load run
//! ```
//!
//! The `corpus` subcommands persist and consume the versioned workload
//! corpus format of `vliw-workloads`: `dump` writes the SPEC-calibrated
//! suite plus the four generator families, `schedule` modulo-schedules
//! every loop on the reference and one heterogeneous configuration
//! (validating every schedule with `vliw-sim`), and `stats` summarises
//! the corpus per benchmark. `familysweep` is the sensitivity experiment
//! sweeping the figure-6/7 configurations over the generator families.
//!
//! Each experiment's elapsed wall-time is reported on stderr as
//! `[time] <experiment>: <seconds> s`, so CI perf gates and humans get
//! timing without external tooling.
//!
//! Every suite-scale row dump (`table2`, `figure6`–`figure9`,
//! `familysweep`) is accompanied by a `<name>.meta.json` sidecar
//! recording which suite scale (loops per benchmark) and bus selection
//! produced it, so a saved artefact is self-describing without
//! perturbing the byte-stable row files themselves. The `corpus`
//! artefacts get sidecars recording where the loops came from instead —
//! the generation scale for in-memory suites, the `--in` path for loaded
//! corpora (whose own scale is whatever the file was dumped at) — and
//! `corpus dump` writes its sidecar next to the `--out` file. `table1`
//! is scale-independent and `schedbench` embeds its scale in the record,
//! so neither writes a sidecar.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use heterovliw_core::explore::experiments::{self, ProfiledSuite};
use heterovliw_core::Study;
use vliw_bench::dump_json;
use vliw_ir::OpClass;
use vliw_workloads::DEFAULT_LOOPS_PER_BENCHMARK;

#[derive(Clone, Copy)]
struct Args {
    loops: usize,
    buses: BusSel,
    jobs: usize,
    seed: u64,
}

/// Flags of the `search` experiment.
#[derive(Clone, Copy)]
struct SearchArgs {
    strategy: heterovliw_core::search::Strategy,
    budget: u64,
    space: heterovliw_core::explore::SpaceKind,
}

impl Default for SearchArgs {
    fn default() -> Self {
        SearchArgs {
            strategy: heterovliw_core::search::Strategy::HillClimb,
            budget: 64,
            space: heterovliw_core::explore::SpaceKind::Paper,
        }
    }
}

#[derive(Clone, Copy)]
enum BusSel {
    One,
    Two,
    Both,
}

impl BusSel {
    fn list(self) -> &'static [u32] {
        match self {
            BusSel::One => &[1],
            BusSel::Two => &[2],
            BusSel::Both => &[1, 2],
        }
    }
}

fn main() -> ExitCode {
    let mut positionals: Vec<String> = Vec::new();
    let mut experiment_flag: Option<String> = None;
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = Args {
        loops: DEFAULT_LOOPS_PER_BENCHMARK,
        buses: BusSel::Both,
        jobs: 0,
        seed: 0,
    };
    let mut search_args = SearchArgs::default();
    let mut search_flag_seen = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--loops" | "--loops-per-benchmark" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.loops = n,
                _ => return usage("--loops-per-benchmark needs a positive integer"),
            },
            "--buses" => match it.next().as_deref() {
                Some("1") => args.buses = BusSel::One,
                Some("2") => args.buses = BusSel::Two,
                Some("both") => args.buses = BusSel::Both,
                _ => return usage("--buses takes 1, 2 or both"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.jobs = n,
                None => return usage("--jobs needs a non-negative integer (0 = auto)"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => args.seed = s,
                None => return usage("--seed needs a non-negative integer (default 0)"),
            },
            "--strategy" => match it.next().map(|v| v.parse()) {
                Some(Ok(s)) => {
                    search_args.strategy = s;
                    search_flag_seen = true;
                }
                Some(Err(e)) => return usage(&e),
                None => return usage("--strategy needs a name (hillclimb|anneal|ga|exhaustive)"),
            },
            "--budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => {
                    search_args.budget = n;
                    search_flag_seen = true;
                }
                _ => return usage("--budget needs a positive integer"),
            },
            "--space" => match it
                .next()
                .as_deref()
                .and_then(heterovliw_core::explore::SpaceKind::from_name)
            {
                Some(k) => {
                    search_args.space = k;
                    search_flag_seen = true;
                }
                None => return usage("--space takes paper or extended"),
            },
            "--experiment" => match it.next() {
                Some(name) => experiment_flag = Some(name),
                None => return usage("--experiment needs a name"),
            },
            "--in" => match it.next() {
                Some(p) => input = Some(PathBuf::from(p)),
                None => return usage("--in needs a file path"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage("--out needs a file path"),
            },
            "--help" | "-h" => return usage(""),
            name if !name.starts_with('-') => positionals.push(name.to_owned()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    // `paper corpus <action>` is a subcommand family, not an experiment.
    if positionals.first().map(String::as_str) == Some("corpus") {
        if experiment_flag.is_some() {
            return usage("--experiment cannot be combined with the corpus subcommand");
        }
        if search_flag_seen {
            return usage("--strategy/--budget/--space only apply to the search experiment");
        }
        if positionals.len() > 2 {
            return usage(&format!("unexpected argument {}", positionals[2]));
        }
        let action = positionals.get(1).map(String::as_str);
        // Flags that don't apply to an action are errors, not no-ops —
        // silently dropping a user's path would misreport what ran.
        if input.is_some() && action == Some("dump") {
            return usage("corpus dump generates its corpus; --in is not accepted");
        }
        if out.is_some() && action != Some("dump") {
            return usage("--out is only used by corpus dump");
        }
        let result = match action {
            Some("dump") => timed("corpus dump", || corpus_dump(args, out.as_deref())),
            Some("schedule") => timed("corpus schedule", || {
                corpus_schedule(args, input.as_deref())
            }),
            Some("stats") => timed("corpus stats", || corpus_stats(args, input.as_deref())),
            Some(other) => return usage(&format!("unknown corpus action {other}")),
            None => return usage("corpus needs an action: dump | schedule | stats"),
        };
        return finish(result);
    }
    if positionals.len() > 1 {
        return usage(&format!("unexpected argument {}", positionals[1]));
    }
    if input.is_some() || out.is_some() {
        return usage("--in/--out only apply to the corpus subcommand");
    }
    let experiment = experiment_flag
        .or_else(|| positionals.first().cloned())
        .unwrap_or_else(|| "all".to_owned());
    if search_flag_seen && experiment != "search" {
        return usage("--strategy/--budget/--space only apply to the search experiment");
    }
    // Reference profiles (and the measurement memo cache they carry) are
    // shared across every experiment of this invocation: `all` profiles
    // each bus count once, and Figure 7's unrestricted-menu variant reuses
    // Figure 6's measured configurations outright.
    let mut store = ProfiledStore::new(args);
    let result = match experiment.as_str() {
        "table1" => timed("table1", table1),
        "table2" => timed("table2", || table2(args)),
        "figure6" => timed("figure6", || figure6(args, &mut store)),
        "figure7" => timed("figure7", || figure7(args, &mut store)),
        "figure8" => timed("figure8", || figure8(args, &mut store)),
        "figure9" => timed("figure9", || figure9(args, &mut store)),
        "schedbench" => timed("schedbench", || schedbench(args)),
        "familysweep" => timed("familysweep", || familysweep(args)),
        "search" => timed("search", || search(args, search_args, &mut store)),
        "searchbench" => timed("searchbench", || searchbench(args)),
        "all" => timed("table1", table1)
            .and_then(|()| timed("table2", || table2(args)))
            .and_then(|()| timed("figure6", || figure6(args, &mut store)))
            .and_then(|()| timed("figure7", || figure7(args, &mut store)))
            .and_then(|()| timed("figure8", || figure8(args, &mut store)))
            .and_then(|()| timed("figure9", || figure9(args, &mut store))),
        other => return usage(&format!("unknown experiment {other}")),
    };
    finish(result)
}

fn finish(result: Result<(), AnyError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one experiment and reports its wall-time on stderr (stdout and the
/// JSON artefacts stay byte-identical regardless of timing or job count).
fn timed(name: &str, run: impl FnOnce() -> Result<(), AnyError>) -> Result<(), AnyError> {
    let start = Instant::now();
    let result = run();
    eprintln!("[time] {name}: {:.3} s", start.elapsed().as_secs_f64());
    result
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: paper [table1|table2|figure6|figure7|figure8|figure9|schedbench|familysweep|\
         search|searchbench|all] \
         [--experiment NAME] [--loops-per-benchmark N] [--buses 1|2|both] [--jobs N] [--seed S]\n\
         \x20      paper search [--strategy hillclimb|anneal|ga|exhaustive] [--budget N] \
         [--space paper|extended] [--seed S]\n\
         \x20      paper corpus dump [--out FILE] | corpus schedule [--in FILE] | \
         corpus stats [--in FILE]"
    );
    if msg.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Sidecar metadata describing which suite scale a row dump came from.
///
/// Written as `<name>.meta.json` next to `<name>.json` so saved artefacts
/// are self-describing (a 40-loop interactive dump and a ~400-loop
/// paper-scale dump are distinguishable after the fact) without changing a
/// single byte of the row files the determinism and perf gates compare.
#[derive(serde::Serialize)]
struct DumpMeta {
    experiment: String,
    loops_per_benchmark: usize,
    buses: Vec<u32>,
    seed: u64,
}

fn dump_meta(name: &str, args: Args) {
    dump_json(
        &format!("{name}.meta"),
        &DumpMeta {
            experiment: name.to_owned(),
            loops_per_benchmark: args.loops,
            buses: args.buses.list().to_vec(),
            seed: args.seed,
        },
    );
}

fn study(args: Args, buses: u32) -> Study {
    Study::new()
        .with_loops_per_benchmark(args.loops)
        .with_buses(buses)
        .with_jobs(args.jobs)
        .with_seed(args.seed)
}

/// Lazily profiled suites, one per bus count, shared by every experiment
/// of one invocation so reference profiling runs once and the measurement
/// memo cache accumulates across figures.
struct ProfiledStore {
    args: Args,
    per_bus: HashMap<u32, ProfiledSuite>,
}

impl ProfiledStore {
    fn new(args: Args) -> Self {
        ProfiledStore {
            args,
            per_bus: HashMap::new(),
        }
    }

    fn get(&mut self, buses: u32) -> Result<&ProfiledSuite, AnyError> {
        if !self.per_bus.contains_key(&buses) {
            let profiled = study(self.args, buses).profile()?;
            self.per_bus.insert(buses, profiled);
        }
        Ok(&self.per_bus[&buses])
    }

    /// Profiles (lazily) and returns several bus counts at once, in the
    /// order given — the search's extended space places candidates on
    /// every profiled shape simultaneously.
    fn get_many(&mut self, buses: &[u32]) -> Result<Vec<&ProfiledSuite>, AnyError> {
        for &b in buses {
            self.get(b)?;
        }
        Ok(buses.iter().map(|b| &self.per_bus[b]).collect())
    }
}

/// One row of Table 1, serialised alongside the printed table.
#[derive(serde::Serialize)]
struct Table1Row {
    class: String,
    latency: u32,
    relative_energy: f64,
}

fn table1() -> Result<(), AnyError> {
    println!("\n== Table 1: latency and relative energy per instruction class ==");
    println!("{:<24} {:>7} {:>7}", "class", "latency", "energy");
    let mut rows = Vec::new();
    for class in OpClass::SOURCE_CLASSES {
        println!(
            "{:<24} {:>7} {:>7.1}",
            class.to_string(),
            class.latency(),
            class.relative_energy()
        );
        rows.push(Table1Row {
            class: class.to_string(),
            latency: class.latency(),
            relative_energy: class.relative_energy(),
        });
    }
    dump_json("table1", &rows);
    Ok(())
}

fn table2(args: Args) -> Result<(), AnyError> {
    println!("\n== Table 2: % execution time per constraint class ==");
    let rows = study(args, 1).table2();
    println!(
        "{:<14} {:>14} {:>26} {:>18}",
        "benchmark", "recMII<resMII", "resMII<=recMII<1.3resMII", "1.3resMII<=recMII"
    );
    for r in &rows {
        println!(
            "{:<14} {:>13.2}% {:>25.2}% {:>17.2}%",
            r.benchmark, r.resource_pct, r.borderline_pct, r.recurrence_pct
        );
    }
    dump_json("table2", &rows);
    dump_meta("table2", args);
    Ok(())
}

fn figure6(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 6: ED2 of heterogeneous, normalised to optimum homogeneous ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure6_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.benchmark, r.ed2_normalized));
        }
        println!(
            "{}",
            vliw_bench::format_bar("mean", experiments::mean_normalized(&rows))
        );
        all.extend(rows);
    }
    dump_json("figure6", &all);
    dump_meta("figure6", args);
    Ok(())
}

fn figure7(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 7: ED2 vs number of supported frequencies ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure7_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.menu, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure7", &all);
    dump_meta("figure7", args);
    Ok(())
}

fn figure8(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 8: ED2 vs ICN/cache energy shares ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure8_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            let label = format!(
                ".{:<2} / {:.2}",
                (r.icn_share * 100.0) as u32,
                r.cache_share
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure8", &all);
    dump_meta("figure8", args);
    Ok(())
}

/// One `schedbench` record: raw scheduler throughput on the synthetic
/// suite. Unlike the figure/table dumps this artefact carries wall-clock
/// measurements, so it is *not* byte-stable across runs — it exists for
/// the CI perf gate, which compares `loops_per_second` against the
/// committed baseline.
#[derive(serde::Serialize)]
struct SchedBenchRecord {
    experiment: String,
    loops_per_benchmark: usize,
    loops_scheduled: u64,
    wall_time_s: f64,
    loops_per_second: f64,
}

/// `schedbench`: modulo-schedules every loop of the suite on the reference
/// homogeneous machine and on one heterogeneous configuration, end to end
/// through the §4 pipeline (partition + IMS + IT retry), and reports the
/// aggregate loops-scheduled-per-second throughput.
fn schedbench(args: Args) -> Result<(), AnyError> {
    use heterovliw_core::machine::{ClockedConfig, MachineDesign, Time};
    use heterovliw_core::sched::{schedule_loop_ws, SchedWorkspace, ScheduleOptions};

    println!("\n== schedbench: scheduler throughput (loops/second) ==");
    let suite = heterovliw_core::workloads::suite_seeded(args.loops, args.seed);
    let design = MachineDesign::paper_machine(1);
    let configs = [
        ClockedConfig::reference(design),
        ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
    ];
    let base_opts = ScheduleOptions::default();
    // One workspace for the whole run, exactly as the exploration pipeline
    // holds one per worker thread.
    let mut ws = SchedWorkspace::new();
    let mut scheduled = 0u64;
    let start = Instant::now();
    for bench in &suite {
        for l in &bench.loops {
            let mut opts = base_opts.clone();
            opts.trip_count = l.trip_count();
            for config in &configs {
                schedule_loop_ws(l.ddg(), config, None, &opts, &mut ws)
                    .map_err(|e| format!("schedbench: {e}"))?;
                scheduled += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let lps = if wall > 0.0 {
        scheduled as f64 / wall
    } else {
        f64::INFINITY
    };
    println!("scheduled {scheduled} loops in {wall:.3} s => {lps:.1} loops/s");
    dump_json(
        "schedbench",
        &SchedBenchRecord {
            experiment: "schedbench".to_owned(),
            loops_per_benchmark: args.loops,
            loops_scheduled: scheduled,
            wall_time_s: wall,
            loops_per_second: lps,
        },
    );
    Ok(())
}

/// The corpus composition shared by `corpus dump` and the in-memory path
/// of `corpus schedule`/`corpus stats`: the ten SPEC-calibrated benchmarks
/// plus the four generator families, all at the same per-benchmark scale.
fn corpus_benchmarks(loops: usize, seed: u64) -> Vec<heterovliw_core::workloads::Benchmark> {
    let mut benches = heterovliw_core::workloads::suite_seeded(loops, seed);
    benches.extend(heterovliw_core::workloads::family_suite_seeded(loops, seed));
    benches
}

/// Sidecar for the corpus subcommands. Unlike the experiment sidecars it
/// records where the loops actually came from: the generation scale is
/// only meaningful for generated (in-memory) corpora — rows computed from
/// an `--in` file inherit that file's scale, whatever it was — and the
/// bus selection is not a corpus knob at all.
#[derive(serde::Serialize)]
struct CorpusMeta {
    subcommand: String,
    /// `"generated"` for in-memory suites, else the `--in` file path.
    source: String,
    /// Scale of a generated corpus; `null` when loops came from a file.
    loops_per_benchmark: Option<usize>,
}

impl CorpusMeta {
    fn new(subcommand: &str, loops: usize, input: Option<&std::path::Path>) -> Self {
        CorpusMeta {
            subcommand: subcommand.to_owned(),
            source: input.map_or_else(|| "generated".to_owned(), |p| p.display().to_string()),
            loops_per_benchmark: input.is_none().then_some(loops),
        }
    }
}

/// `corpus dump`: writes the corpus JSON (SPEC suite + generator families)
/// to `--out` (default `target/paper-results/corpus.json`), with a
/// `.meta.json` sidecar next to it.
fn corpus_dump(args: Args, out: Option<&std::path::Path>) -> Result<(), AnyError> {
    use heterovliw_core::workloads::Corpus;

    let corpus = Corpus::from_benchmarks(corpus_benchmarks(args.loops, args.seed));
    let default_path = vliw_bench::results_dir().join("corpus.json");
    let path = out.unwrap_or(&default_path);
    corpus.save(path)?;
    // The sidecar lives next to the artefact it describes, wherever
    // --out pointed.
    let meta_path = path.with_extension("meta.json");
    std::fs::write(
        &meta_path,
        serde_json::to_string_pretty(&CorpusMeta::new("dump", args.loops, None))?,
    )?;
    println!(
        "corpus: {} benchmarks, {} loops written to {}",
        corpus.benchmarks.len(),
        corpus.total_loops(),
        path.display()
    );
    println!("  [meta written to {}]", meta_path.display());
    Ok(())
}

/// One `corpus schedule` row: one loop modulo-scheduled (and validated)
/// on one configuration. Byte-stable across job counts and across the
/// file/in-memory paths.
#[derive(serde::Serialize)]
struct CorpusScheduleRow {
    benchmark: String,
    loop_name: String,
    ops: usize,
    edges: usize,
    config: String,
    it_ns: f64,
    exec_time_ns: f64,
    comms_per_iter: u64,
    mem_accesses_per_iter: u64,
}

/// `corpus schedule`: modulo-schedules every loop of the corpus on the
/// reference homogeneous machine and one heterogeneous configuration,
/// validates every schedule with the `vliw-sim` checker, and dumps
/// byte-stable per-loop rows.
///
/// With `--in FILE` the corpus is loaded (and strictly validated) from
/// disk; without it, the equivalent in-memory suite is scheduled — the
/// two paths produce byte-identical JSON, which CI diffs.
fn corpus_schedule(args: Args, input: Option<&std::path::Path>) -> Result<(), AnyError> {
    use heterovliw_core::exec::Executor;
    use heterovliw_core::machine::{ClockedConfig, MachineDesign, Time};
    use heterovliw_core::sched::{schedule_loop_ws, SchedWorkspace, ScheduleOptions};
    use heterovliw_core::sim::validate;
    use heterovliw_core::workloads::Corpus;

    println!("\n== corpus schedule: per-loop modulo schedules (validated) ==");
    let (benches, source) = match input {
        Some(path) => (Corpus::load(path)?.benchmarks, path.display().to_string()),
        None => (
            corpus_benchmarks(args.loops, args.seed),
            "in-memory suite".to_owned(),
        ),
    };
    let design = MachineDesign::paper_machine(1);
    let configs = [
        ("reference", ClockedConfig::reference(design)),
        (
            "heterogeneous",
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
        ),
    ];
    let jobs: Vec<(&str, &heterovliw_core::ir::Loop)> = benches
        .iter()
        .flat_map(|b| b.loops.iter().map(move |l| (b.name.as_str(), l)))
        .collect();
    let exec = Executor::new(args.jobs);
    let per_loop = exec.try_map_init(
        &jobs,
        SchedWorkspace::new,
        |ws, _, &(bench, l)| -> Result<Vec<CorpusScheduleRow>, String> {
            let mut rows = Vec::with_capacity(configs.len());
            for (config_name, config) in &configs {
                let opts = ScheduleOptions {
                    trip_count: l.trip_count(),
                    ..ScheduleOptions::default()
                };
                let s = schedule_loop_ws(l.ddg(), config, None, &opts, ws)
                    .map_err(|e| format!("{bench}/{}: {e}", l.ddg().name()))?;
                validate(l.ddg(), config, &s).map_err(|violations| {
                    format!(
                        "{bench}/{}: schedule failed validation: {}",
                        l.ddg().name(),
                        violations
                            .first()
                            .map_or_else(|| "unknown violation".to_owned(), |v| v.to_string())
                    )
                })?;
                rows.push(CorpusScheduleRow {
                    benchmark: bench.to_owned(),
                    loop_name: l.ddg().name().to_owned(),
                    ops: l.ddg().num_ops(),
                    edges: l.ddg().num_edges(),
                    config: (*config_name).to_owned(),
                    it_ns: s.it().as_ns(),
                    exec_time_ns: s.exec_time(l.trip_count()).as_ns(),
                    comms_per_iter: s.comms_per_iter(),
                    mem_accesses_per_iter: s.mem_accesses_per_iter(),
                });
            }
            Ok(rows)
        },
    )?;
    let rows: Vec<CorpusScheduleRow> = per_loop.into_iter().flatten().collect();
    println!(
        "scheduled and validated {} loops x {} configs from {source}",
        jobs.len(),
        configs.len()
    );
    dump_json("corpus_schedule", &rows);
    dump_json(
        "corpus_schedule.meta",
        &CorpusMeta::new("schedule", args.loops, input),
    );
    Ok(())
}

/// One `corpus stats` row: a benchmark summarised.
#[derive(serde::Serialize)]
struct CorpusStatsRow {
    benchmark: String,
    loops: usize,
    total_ops: usize,
    total_edges: usize,
    resource_pct: f64,
    borderline_pct: f64,
    recurrence_pct: f64,
    mean_rec_mii: f64,
    max_rec_mii: u32,
}

/// `corpus stats`: per-benchmark structural summary of a corpus (loaded
/// from `--in FILE`, or the equivalent in-memory suite without it).
fn corpus_stats(args: Args, input: Option<&std::path::Path>) -> Result<(), AnyError> {
    use heterovliw_core::machine::MachineDesign;
    use heterovliw_core::workloads::{classify, Corpus, LoopClass};

    println!("\n== corpus stats: per-benchmark structure ==");
    let benches = match input {
        Some(path) => Corpus::load(path)?.benchmarks,
        None => corpus_benchmarks(args.loops, args.seed),
    };
    let design = MachineDesign::paper_machine(1);
    let mut rows = Vec::with_capacity(benches.len());
    println!(
        "{:<14} {:>5} {:>6} {:>6} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "benchmark", "loops", "ops", "edges", "res%", "bord%", "rec%", "recMII~", "recMII^"
    );
    for b in &benches {
        let mut shares = [0.0f64; 3];
        let mut rec_sum = 0u64;
        let mut rec_max = 0u32;
        for l in &b.loops {
            let class = classify(l.ddg(), design);
            let idx = LoopClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("3 classes");
            shares[idx] += l.weight();
            let rm = l.ddg().rec_mii();
            rec_sum += u64::from(rm);
            rec_max = rec_max.max(rm);
        }
        let row = CorpusStatsRow {
            benchmark: b.name.clone(),
            loops: b.loops.len(),
            total_ops: b.loops.iter().map(|l| l.ddg().num_ops()).sum(),
            total_edges: b.loops.iter().map(|l| l.ddg().num_edges()).sum(),
            resource_pct: shares[0] * 100.0,
            borderline_pct: shares[1] * 100.0,
            recurrence_pct: shares[2] * 100.0,
            mean_rec_mii: rec_sum as f64 / b.loops.len() as f64,
            max_rec_mii: rec_max,
        };
        println!(
            "{:<14} {:>5} {:>6} {:>6} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.2} {:>7}",
            row.benchmark,
            row.loops,
            row.total_ops,
            row.total_edges,
            row.resource_pct,
            row.borderline_pct,
            row.recurrence_pct,
            row.mean_rec_mii,
            row.max_rec_mii
        );
        rows.push(row);
    }
    dump_json("corpus_stats", &rows);
    dump_json(
        "corpus_stats.meta",
        &CorpusMeta::new("stats", args.loops, input),
    );
    Ok(())
}

/// `familysweep`: the sensitivity experiment sweeping the figure-6/7
/// configurations (frequency menus x bus counts) over the four non-SPEC
/// generator families.
fn familysweep(args: Args) -> Result<(), AnyError> {
    println!("\n== familysweep: ED2 of generator families across figure-6/7 configs ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let suite = heterovliw_core::workloads::family_suite_seeded(args.loops, args.seed);
        let profiled = experiments::profile_suite_with(
            &suite,
            buses,
            &study.options().sched,
            &study.executor(),
        )?;
        let rows = experiments::familysweep_with(&profiled, study.options(), &study.executor())?;
        for r in &rows {
            let label = format!("{}/{}", r.family, r.menu);
            println!("{}", vliw_bench::format_bar(&label, r.ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("familysweep", &all);
    dump_meta("familysweep", args);
    Ok(())
}

/// Sidecar for the `search` experiment: every knob that shaped the run.
#[derive(serde::Serialize)]
struct SearchMeta {
    experiment: String,
    strategy: String,
    space: String,
    budget: u64,
    seed: u64,
    loops_per_benchmark: usize,
    buses: Vec<u32>,
}

/// `search`: seeded metaheuristic design-space search with a Pareto
/// archive. The paper space searches the §3.3 grid on the first bus of
/// `--buses`; the extended space searches frequencies × speed split ×
/// explicit voltages across every listed bus count. `search.json` is
/// byte-stable: identical for every `--jobs` value and machine.
fn search(args: Args, search_args: SearchArgs, store: &mut ProfiledStore) -> Result<(), AnyError> {
    use heterovliw_core::explore::{run_search, SpaceKind};

    println!(
        "\n== search: {} over the {} space ==",
        search_args.strategy,
        search_args.space.name()
    );
    let buses: Vec<u32> = match search_args.space {
        SpaceKind::Paper => vec![args.buses.list()[0]],
        SpaceKind::Extended => args.buses.list().to_vec(),
    };
    let suites = store.get_many(&buses)?;
    let study = study(args, buses[0]);
    let report = run_search(
        search_args.space,
        search_args.strategy,
        search_args.budget,
        args.seed,
        &suites,
        study.options(),
        &study.executor(),
    );
    println!(
        "space {} ({} candidates), budget {}, seed {}: {} evaluations, {} frontier points",
        report.space,
        report.space_size,
        report.budget,
        report.seed,
        report.evaluations,
        report.frontier.len()
    );
    match &report.best {
        Some(best) => {
            println!(
                "best: index {} | {} bus(es), {} fast, fast {:.2} ns, slow {:.2} ns, \
                 Vdd {:.2}/{:.2}/{:.2}/{:.2} V | ED2 {:.6e}",
                best.index,
                best.buses,
                best.num_fast,
                best.fast_cycle_ns,
                best.slow_cycle_ns,
                best.vdd_fast,
                best.vdd_slow,
                best.vdd_icn,
                best.vdd_cache,
                best.ed2
            );
        }
        None => println!("best: no feasible candidate found within the budget"),
    }
    for row in &report.frontier {
        let label = format!(
            "#{} {}b {}f {:.2}/{:.2}ns",
            row.index, row.buses, row.num_fast, row.fast_cycle_ns, row.slow_cycle_ns
        );
        println!(
            "{label:<28} time {:>12.1} ns  energy {:>8.4}  ED2 {:.6e}",
            row.exec_time_ns, row.energy, row.ed2
        );
    }
    dump_json("search", &report);
    dump_json(
        "search.meta",
        &SearchMeta {
            experiment: "search".to_owned(),
            strategy: search_args.strategy.name().to_owned(),
            space: search_args.space.name().to_owned(),
            budget: search_args.budget,
            seed: args.seed,
            loops_per_benchmark: args.loops,
            buses,
        },
    );
    Ok(())
}

/// One `searchbench` record: candidate-evaluation throughput of the
/// search loop over the memo-cached suite. Like `schedbench` it carries
/// wall-clock measurements, so it is *not* byte-stable — it feeds the CI
/// perf gate's `search_evals_per_second` metric.
#[derive(serde::Serialize)]
struct SearchBenchRecord {
    experiment: String,
    loops_per_benchmark: usize,
    budget: u64,
    evaluations: u64,
    wall_time_s: f64,
    search_evals_per_second: f64,
}

/// `searchbench`: times a full-coverage hill-climb of the paper grid on
/// a freshly profiled (cold-cache) suite and reports distinct candidate
/// evaluations per second. The evaluation count is deterministic (the
/// 20-point grid), so the throughput is comparable across runs.
fn searchbench(args: Args) -> Result<(), AnyError> {
    use heterovliw_core::explore::{run_search, SpaceKind};
    use heterovliw_core::search::Strategy;

    println!("\n== searchbench: candidate evaluations/second (paper grid) ==");
    let study = study(args, 1);
    let profiled = study.profile()?;
    let budget = 64; // > grid size, so every run spends exactly 20 evals
    let start = Instant::now();
    let report = run_search(
        SpaceKind::Paper,
        Strategy::HillClimb,
        budget,
        args.seed,
        &[&profiled],
        study.options(),
        &study.executor(),
    );
    let wall = start.elapsed().as_secs_f64();
    let eps = if wall > 0.0 {
        report.evaluations as f64 / wall
    } else {
        f64::INFINITY
    };
    println!(
        "evaluated {} candidates in {wall:.3} s => {eps:.2} evals/s",
        report.evaluations
    );
    dump_json(
        "searchbench",
        &SearchBenchRecord {
            experiment: "searchbench".to_owned(),
            loops_per_benchmark: args.loops,
            budget,
            evaluations: report.evaluations,
            wall_time_s: wall,
            search_evals_per_second: eps,
        },
    );
    Ok(())
}

fn figure9(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 9: ED2 vs leakage shares (cluster/ICN/cache) ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure9_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            let label = format!(
                "{:.2}/{:.2}/{:.2}",
                r.leak_cluster, r.leak_icn, r.leak_cache
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure9", &all);
    dump_meta("figure9", args);
    Ok(())
}
