//! `paper` — regenerate the tables and figures of the CGO 2007 paper,
//! manage on-disk workload corpora, and serve the experiment engine as
//! a daemon.
//!
//! ```text
//! Usage: paper [EXPERIMENT] [--experiment NAME] [--loops-per-benchmark N]
//!              [--buses 1|2|both] [--jobs N] [--seed S] [--store DIR]
//!              [--metrics] [--trace FILE]
//!        paper search          [--strategy hillclimb|anneal|ga|exhaustive]
//!                              [--budget N] [--space paper|extended]
//!                              [--racing] [--shard I/N]
//!                              [--seed S] [--buses B] [--jobs N] [--store DIR]
//!        paper search merge    SHARD_FILE... [--out FILE]
//!        paper corpus dump     [--out FILE]  [--loops-per-benchmark N]
//!        paper corpus schedule [--in FILE]   [--jobs N] [--loops-per-benchmark N]
//!        paper corpus stats    [--in FILE]   [--loops-per-benchmark N]
//!        paper store stats     --store DIR
//!        paper store compact   --store DIR
//!        paper serve   --socket PATH [--jobs N] [--results DIR] [--store DIR]
//!        paper client  --socket PATH (EXPERIMENT | ping | shutdown |
//!                                     corpus schedule|stats |
//!                                     store stats|compact) [flags]
//!        paper loadgen --socket PATH [--clients N] [--requests M]
//!                                    [EXPERIMENT] [flags]
//!
//! EXPERIMENT: table1 | table2 | figure6 | figure7 | figure8 | figure9 |
//!             schedbench | familysweep | search | searchbench | metrics | all
//!             (default: all — which runs the table/figure set; search and
//!             the bench experiments are invoked explicitly. Positional
//!             and --experiment are equivalent.)
//! --loops-per-benchmark N
//!             loops generated per benchmark (default 40 — the interactive
//!             10x scale-down; ~400 reproduces the paper's suite size).
//!             `--loops N` is an accepted shorthand.
//! --buses B   bus configurations to run (default both)
//! --jobs N    worker threads for the exploration pipeline
//!             (default 0 = available parallelism; absurd values are
//!             clamped with a warning; output is identical for every N)
//! --seed S    global seed threaded through workload generation and the
//!             search strategies (default 0, which reproduces the
//!             historical fixed-seed suites bit for bit — all committed
//!             golden fixtures and baselines use it)
//! --strategy NAME
//!             search optimizer (default hillclimb)
//! --budget N  distinct candidate evaluations the search may spend
//!             (default 64; memoised repeats are free)
//! --space K   search space: `paper` (the 20-point §3.3 grid, first bus
//!             of --buses) or `extended` (frequencies × speed split ×
//!             explicit voltages × every bus of --buses; default paper)
//! --racing    successive-halving racing: rank each optimizer batch on a
//!             deterministic loop subsample first and spend full-suite
//!             measurements only on the survivors. The final frontier is
//!             unchanged — racing only reorders which candidates reach
//!             full measurement when (`search` only)
//! --shard I/N run shard I of an N-way deterministic partition of the
//!             gene grid and write a mergeable `search_shard.json`
//!             artifact; fold the per-shard artifacts with
//!             `paper search merge` — the merged frontier's bytes are
//!             independent of N and of merge order (`search` only)
//! --profile   collect the scheduler's per-phase timing breakdown
//!             (clocks, partition, extgraph, place, eject, regs plus a
//!             vliw-sim validation pass) and report it in the JSON
//!             record (`schedbench` only)
//! --metrics   turn on the clock reads behind the latency histograms for
//!             a one-shot run (`paper serve` always has them on). The
//!             `metrics` experiment name renders the process-wide
//!             registry as Prometheus-style text exposition; scrape a
//!             live daemon with `paper client --socket PATH metrics`
//! --trace FILE
//!             write structured span trace events (newline-JSON, with
//!             monotonic `seq` ordering and parent/child span IDs) to
//!             FILE; applies to every mode including serve
//! --store DIR persistent content-addressed measurement store: results
//!             already in DIR are reused instead of re-scheduled, fresh
//!             results are appended for the next run (default: none —
//!             in-memory caches only). On `serve` it becomes the
//!             daemon's default store for every request that does not
//!             carry its own. `paper store stats|compact` inspect and
//!             compact DIR (stdout stays byte-stable; all store
//!             reporting goes to stderr)
//! --out FILE  where `corpus dump` writes (default
//!             target/paper-results/corpus.json) and where `search
//!             merge` writes (default target/paper-results/search_merge.json)
//! --in FILE   corpus file for `corpus schedule` / `corpus stats`; without
//!             it, the equivalent in-memory suite is used, and the output
//!             is byte-identical to a dump-then-load run
//! --socket PATH
//!             Unix socket the daemon listens on (`serve`) or the client
//!             connects to (`client` / `loadgen`)
//! --results DIR
//!             have the daemon persist each response's artefacts under
//!             DIR (`serve` only; default: respond over the socket only)
//! --clients N / --requests M
//!             loadgen concurrency and per-client request count
//!             (defaults 4 and 25)
//! ```
//!
//! The CLI is a thin adapter over `vliw_api`: every subcommand builds a
//! serialisable `Request`, runs it through the shared `Engine` (one
//! worker pool plus process-lifetime profile/measurement caches) and
//! prints the `Response` — the same core the `paper serve` daemon
//! exposes over newline-delimited JSON on a Unix socket. `paper client`
//! sends the identical request to a daemon and prints/persists the
//! response exactly as the one-shot CLI would, so the two paths are
//! byte-for-byte comparable; `paper loadgen` drives N concurrent
//! clients and reports p50/p99 latency and requests/s.
//!
//! Each experiment's elapsed wall-time is reported on stderr as
//! `[time] <experiment>: <seconds> s`, so CI perf gates and humans get
//! timing without external tooling.
//!
//! Every suite-scale row dump (`table2`, `figure6`–`figure9`,
//! `familysweep`) is accompanied by a `<name>.meta.json` sidecar
//! recording which suite scale (loops per benchmark) and bus selection
//! produced it, so a saved artefact is self-describing without
//! perturbing the byte-stable row files themselves. The `corpus`
//! artefacts get sidecars recording where the loops came from instead —
//! the generation scale for in-memory suites, the `--in` path for loaded
//! corpora (whose own scale is whatever the file was dumped at) — and
//! `corpus dump` writes its sidecar next to the `--out` file. `table1`
//! is scale-independent and `schedbench` embeds its scale in the record,
//! so neither writes a sidecar. All artefact writes go through the one
//! shared atomic write path in `vliw_api::artifacts`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use heterovliw_core::api::engine::{corpus_benchmarks, CorpusMeta};
use heterovliw_core::api::{
    loadgen, persist_response, serve, write_atomic, BusSel, Client, Engine, LoadgenOptions,
    Request, Response, RunParams, SearchParams, ServeOptions, StoreConfig,
};
use vliw_bench::{dump_json, results_dir};

#[derive(Clone)]
struct Args {
    loops: usize,
    buses: BusSel,
    jobs: usize,
    seed: u64,
    store: StoreConfig,
    profile: bool,
}

impl Args {
    fn params(&self) -> RunParams {
        RunParams {
            loops: self.loops,
            buses: self.buses,
            seed: self.seed,
            store: self.store.clone(),
            profile: self.profile,
        }
    }
}

fn main() -> ExitCode {
    let mut positionals: Vec<String> = Vec::new();
    let mut experiment_flag: Option<String> = None;
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut results: Option<PathBuf> = None;
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut args = Args {
        loops: RunParams::default().loops,
        buses: BusSel::Both,
        jobs: 0,
        seed: 0,
        store: StoreConfig::none(),
        profile: false,
    };
    let mut search_args = SearchParams::default();
    let mut search_flag_seen = false;
    let mut trace: Option<PathBuf> = None;
    let mut metrics_flag = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => match it.next() {
                Some(p) => trace = Some(PathBuf::from(p)),
                None => return usage("--trace needs a file path"),
            },
            "--metrics" => metrics_flag = true,
            "--loops" | "--loops-per-benchmark" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.loops = n,
                _ => return usage("--loops-per-benchmark needs a positive integer"),
            },
            "--buses" => match it.next().as_deref().and_then(BusSel::from_name) {
                Some(sel) => args.buses = sel,
                None => return usage("--buses takes 1, 2 or both"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.jobs = n,
                None => return usage("--jobs needs a non-negative integer (0 = auto)"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => args.seed = s,
                None => return usage("--seed needs a non-negative integer (default 0)"),
            },
            "--store" => match it.next() {
                Some(p) => args.store = StoreConfig::at(PathBuf::from(p)),
                None => return usage("--store needs a directory path"),
            },
            "--profile" => args.profile = true,
            "--strategy" => match it.next().map(|v| v.parse()) {
                Some(Ok(s)) => {
                    search_args.strategy = s;
                    search_flag_seen = true;
                }
                Some(Err(e)) => return usage(&e),
                None => return usage("--strategy needs a name (hillclimb|anneal|ga|exhaustive)"),
            },
            "--budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => {
                    search_args.budget = n;
                    search_flag_seen = true;
                }
                _ => return usage("--budget needs a positive integer"),
            },
            "--space" => match it
                .next()
                .as_deref()
                .and_then(heterovliw_core::explore::SpaceKind::from_name)
            {
                Some(k) => {
                    search_args.space = k;
                    search_flag_seen = true;
                }
                None => return usage("--space takes paper or extended"),
            },
            "--racing" => {
                search_args.racing = true;
                search_flag_seen = true;
            }
            "--shard" => match it.next() {
                Some(v) => match parse_shard(&v) {
                    Ok(pair) => {
                        search_args.shard = Some(pair);
                        search_flag_seen = true;
                    }
                    Err(msg) => return usage(&msg),
                },
                None => return usage("--shard needs i/n (e.g. 2/3)"),
            },
            "--experiment" => match it.next() {
                Some(name) => experiment_flag = Some(name),
                None => return usage("--experiment needs a name"),
            },
            "--in" => match it.next() {
                Some(p) => input = Some(PathBuf::from(p)),
                None => return usage("--in needs a file path"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage("--out needs a file path"),
            },
            "--socket" => match it.next() {
                Some(p) => socket = Some(PathBuf::from(p)),
                None => return usage("--socket needs a path"),
            },
            "--results" => match it.next() {
                Some(p) => results = Some(PathBuf::from(p)),
                None => return usage("--results needs a directory path"),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => clients = Some(n),
                _ => return usage("--clients needs a positive integer"),
            },
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => requests = Some(n),
                _ => return usage("--requests needs a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            name if !name.starts_with('-') => positionals.push(name.to_owned()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    // The observability switches are process-global and apply to every
    // mode: --metrics turns on the clock reads behind the latency
    // histograms (serve always does), --trace installs the span tracer.
    if metrics_flag {
        heterovliw_core::obs::enable_timing();
    }
    if let Some(path) = &trace {
        if let Err(e) = heterovliw_core::obs::trace::init(path) {
            eprintln!("error: --trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let mode = positionals.first().map(String::as_str);

    // The daemon-facing subcommands own the daemon-facing flags; using
    // them anywhere else is an error, not a no-op.
    if !matches!(mode, Some("serve" | "client" | "loadgen")) && socket.is_some() {
        return usage("--socket only applies to serve, client and loadgen");
    }
    if mode != Some("serve") && results.is_some() {
        return usage("--results only applies to serve");
    }
    if mode != Some("loadgen") && (clients.is_some() || requests.is_some()) {
        return usage("--clients/--requests only apply to loadgen");
    }
    // --profile only drives the schedbench phase breakdown; anywhere
    // else it would be a silent no-op, which this CLI treats as an
    // error (like --store on table1).
    if args.profile {
        let is_schedbench = experiment_flag.as_deref() == Some("schedbench")
            || mode == Some("schedbench")
            || (matches!(mode, Some("client" | "loadgen"))
                && positionals.get(1).map(String::as_str) == Some("schedbench"));
        if !is_schedbench {
            return usage("--profile only applies to the schedbench experiment");
        }
    }

    match mode {
        Some("serve") => {
            if experiment_flag.is_some() || !positionals[1..].is_empty() {
                return usage("serve takes no experiment; it serves them all");
            }
            if search_flag_seen {
                return usage("--strategy/--budget/--space/--racing/--shard only apply to the search experiment");
            }
            if input.is_some() || out.is_some() {
                return usage("--in/--out only apply to the corpus subcommand");
            }
            let Some(socket) = socket else {
                return usage("serve needs --socket PATH");
            };
            // --store wires both halves from the one flag: the engine's
            // default store (applied to requests without their own) and
            // the serve options (which log it on startup).
            let engine = Engine::new(args.jobs).with_default_store(args.store.clone());
            let opts = ServeOptions {
                socket,
                results,
                store: args.store,
            };
            finish(serve(&engine, &opts).map_err(Into::into))
        }
        Some("client") => {
            let Some(socket) = socket else {
                return usage("client needs --socket PATH");
            };
            let req = match build_request(
                &positionals[1..],
                &args,
                search_args,
                search_flag_seen,
                input,
                out,
                true,
            ) {
                Ok(req) => req,
                Err(msg) => return usage(&msg),
            };
            finish(run_remote(&socket, &req))
        }
        Some("loadgen") => {
            let Some(socket) = socket else {
                return usage("loadgen needs --socket PATH");
            };
            let request = if positionals.len() > 1 {
                match build_request(
                    &positionals[1..],
                    &args,
                    search_args,
                    search_flag_seen,
                    input,
                    out,
                    false,
                ) {
                    Ok(req) => req,
                    Err(msg) => return usage(&msg),
                }
            } else {
                Request::Ping
            };
            let opts = LoadgenOptions {
                clients: clients.unwrap_or(4),
                requests_per_client: requests.unwrap_or(25),
                request,
            };
            finish(timed("loadgen", || run_loadgen(&socket, &opts)))
        }
        Some("corpus") => {
            // `paper corpus <action>` is a subcommand family, not an
            // experiment.
            if experiment_flag.is_some() {
                return usage("--experiment cannot be combined with the corpus subcommand");
            }
            if search_flag_seen {
                return usage("--strategy/--budget/--space/--racing/--shard only apply to the search experiment");
            }
            if positionals.len() > 2 {
                return usage(&format!("unexpected argument {}", positionals[2]));
            }
            let action = positionals.get(1).map(String::as_str);
            // Flags that don't apply to an action are errors, not no-ops —
            // silently dropping a user's path would misreport what ran.
            if input.is_some() && action == Some("dump") {
                return usage("corpus dump generates its corpus; --in is not accepted");
            }
            if out.is_some() && action != Some("dump") {
                return usage("--out is only used by corpus dump");
            }
            let result = match action {
                Some("dump") => timed("corpus dump", || corpus_dump(&args, out.as_deref())),
                Some("schedule") => run_local(
                    &Engine::new(args.jobs),
                    &Request::CorpusSchedule {
                        params: args.params(),
                        input,
                    },
                ),
                Some("stats") => run_local(
                    &Engine::new(args.jobs),
                    &Request::CorpusStats {
                        params: args.params(),
                        input,
                    },
                ),
                Some(other) => return usage(&format!("unknown corpus action {other}")),
                None => return usage("corpus needs an action: dump | schedule | stats"),
            };
            finish(result)
        }
        Some("store") => {
            // `paper store <action>` administers a measurement store
            // directory; it is a subcommand family like `corpus`, not
            // an experiment.
            if experiment_flag.is_some() {
                return usage("--experiment cannot be combined with the store subcommand");
            }
            if search_flag_seen {
                return usage("--strategy/--budget/--space/--racing/--shard only apply to the search experiment");
            }
            if input.is_some() || out.is_some() {
                return usage("--in/--out only apply to the corpus subcommand");
            }
            if positionals.len() > 2 {
                return usage(&format!("unexpected argument {}", positionals[2]));
            }
            if !args.store.is_enabled() {
                return usage("the store subcommand needs --store DIR");
            }
            let req = match positionals.get(1).map(String::as_str) {
                Some("stats") => Request::StoreStats { store: args.store },
                Some("compact") => Request::StoreCompact { store: args.store },
                Some(other) => return usage(&format!("unknown store action {other}")),
                None => return usage("store needs an action: stats | compact"),
            };
            finish(run_local(&Engine::new(args.jobs), &req))
        }
        Some("search") if positionals.get(1).map(String::as_str) == Some("merge") => {
            // `paper search merge SHARD...` folds shard artifacts into
            // one frontier CLI-side — it reads local files, which a
            // request cannot carry.
            if experiment_flag.is_some() {
                return usage("--experiment cannot be combined with search merge");
            }
            if search_flag_seen {
                return usage(
                    "search merge folds existing shard artifacts; \
                     the search flags do not apply",
                );
            }
            if input.is_some() {
                return usage("--in only applies to the corpus subcommand");
            }
            if args.store.is_enabled() {
                return usage("--store does not apply to search merge (it reads shard files)");
            }
            let files = &positionals[2..];
            if files.is_empty() {
                return usage("search merge needs at least one shard artifact file");
            }
            finish(timed("search merge", || {
                search_merge(files, out.as_deref())
            }))
        }
        _ => {
            if positionals.len() > 1 {
                return usage(&format!("unexpected argument {}", positionals[1]));
            }
            if input.is_some() || out.is_some() {
                return usage("--in/--out only apply to the corpus subcommand");
            }
            let experiment = experiment_flag
                .or_else(|| positionals.first().cloned())
                .unwrap_or_else(|| "all".to_owned());
            if search_flag_seen && experiment != "search" {
                return usage("--strategy/--budget/--space/--racing/--shard only apply to the search experiment");
            }
            // One engine for the whole invocation: reference profiles
            // (and the measurement memo cache they carry) are shared
            // across every experiment — `all` profiles each bus count
            // once, and Figure 7's unrestricted-menu variant reuses
            // Figure 6's measured configurations outright.
            let engine = Engine::new(args.jobs);
            let requests: Vec<Request> = if experiment == "all" {
                let p = args.params();
                vec![
                    Request::Table1,
                    Request::Table2(p.clone()),
                    Request::Figure6(p.clone()),
                    Request::Figure7(p.clone()),
                    Request::Figure8(p.clone()),
                    Request::Figure9(p),
                ]
            } else {
                match experiment_request(&experiment, &args, search_args) {
                    Ok(req) => vec![req],
                    Err(msg) => return usage(&msg),
                }
            };
            let mut result = Ok(());
            for req in &requests {
                result = run_local(&engine, req);
                if result.is_err() {
                    break;
                }
            }
            finish(result)
        }
    }
}

/// Maps an experiment name (and the global/search flags) to its request.
fn experiment_request(
    name: &str,
    args: &Args,
    search_args: SearchParams,
) -> Result<Request, String> {
    // table1 measures nothing, so a --store would be a silent no-op —
    // the CLI treats inapplicable flags as errors, like the request
    // builder does on the wire.
    if name == "table1" && args.store.is_enabled() {
        return Err("--store does not apply to table1 (it measures nothing)".to_owned());
    }
    if name == "metrics" && args.store.is_enabled() {
        return Err("--store does not apply to metrics (it only reads the registry)".to_owned());
    }
    let p = args.params();
    match name {
        "table1" => Ok(Request::Table1),
        "metrics" => Ok(Request::Metrics),
        "table2" => Ok(Request::Table2(p)),
        "figure6" => Ok(Request::Figure6(p)),
        "figure7" => Ok(Request::Figure7(p)),
        "figure8" => Ok(Request::Figure8(p)),
        "figure9" => Ok(Request::Figure9(p)),
        "schedbench" => Ok(Request::SchedBench(p)),
        "familysweep" => Ok(Request::FamilySweep(p)),
        "search" => Ok(Request::Search {
            params: p,
            search: search_args,
        }),
        "searchbench" => Ok(Request::SearchBench(p)),
        other => Err(format!("unknown experiment {other}")),
    }
}

/// Builds the request for `client`/`loadgen` from the positional tail
/// (everything after the subcommand name).
fn build_request(
    tail: &[String],
    args: &Args,
    search_args: SearchParams,
    search_flag_seen: bool,
    input: Option<PathBuf>,
    out: Option<PathBuf>,
    allow_control: bool,
) -> Result<Request, String> {
    if out.is_some() {
        return Err("--out is only used by corpus dump".to_owned());
    }
    let name = tail.first().map(String::as_str).ok_or(
        "a request kind is needed: an experiment, ping, shutdown, corpus schedule|stats, \
         or store stats|compact",
    )?;
    if search_flag_seen && name != "search" {
        return Err(
            "--strategy/--budget/--space/--racing/--shard only apply to the search experiment"
                .to_owned(),
        );
    }
    if input.is_some() && name != "corpus" {
        return Err("--in/--out only apply to the corpus subcommand".to_owned());
    }
    if args.store.is_enabled() && matches!(name, "ping" | "shutdown") {
        return Err(format!("--store does not apply to {name}"));
    }
    match name {
        "ping" | "shutdown" if !allow_control => {
            Err(format!("loadgen cannot repeat {name}; pick an experiment"))
        }
        "ping" => ok_sole(tail, Request::Ping),
        "shutdown" => ok_sole(tail, Request::Shutdown),
        "store" => {
            if tail.len() > 2 {
                return Err(format!("unexpected argument {}", tail[2]));
            }
            // Unlike the local subcommand, a client may omit --store:
            // the daemon then administers its own default store.
            let store = args.store.clone();
            match tail.get(1).map(String::as_str) {
                Some("stats") => Ok(Request::StoreStats { store }),
                Some("compact") => Ok(Request::StoreCompact { store }),
                Some(other) => Err(format!("unknown store action {other}")),
                None => Err("store needs an action: stats | compact".to_owned()),
            }
        }
        "corpus" => {
            if tail.len() > 2 {
                return Err(format!("unexpected argument {}", tail[2]));
            }
            match tail.get(1).map(String::as_str) {
                Some("schedule") => Ok(Request::CorpusSchedule {
                    params: args.params(),
                    input,
                }),
                Some("stats") => Ok(Request::CorpusStats {
                    params: args.params(),
                    input,
                }),
                Some("dump") => {
                    Err("corpus dump writes local files; run it without client".to_owned())
                }
                Some(other) => Err(format!("unknown corpus action {other}")),
                None => Err("corpus needs an action: schedule | stats".to_owned()),
            }
        }
        "all" => {
            Err("the request protocol is one experiment per request; all is CLI-only".to_owned())
        }
        other => ok_sole(tail, experiment_request(other, args, search_args)?),
    }
}

/// Rejects trailing positionals after a non-corpus request name.
fn ok_sole(tail: &[String], req: Request) -> Result<Request, String> {
    if tail.len() > 1 {
        return Err(format!("unexpected argument {}", tail[1]));
    }
    Ok(req)
}

fn finish(result: Result<(), AnyError>) -> ExitCode {
    // The tracer's writer is buffered and process-global; flush it on
    // every exit path so a trace file always ends on a complete event.
    heterovliw_core::obs::trace::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one step and reports its wall-time on stderr (stdout and the
/// JSON artefacts stay byte-identical regardless of timing or job count).
fn timed<R>(name: &str, run: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let result = run();
    eprintln!("[time] {name}: {:.3} s", start.elapsed().as_secs_f64());
    result
}

/// The `[time]` label for a request (the corpus kinds keep their
/// historical two-word labels).
fn timed_label(req: &Request) -> &'static str {
    match req {
        Request::CorpusSchedule { .. } => "corpus schedule",
        Request::CorpusStats { .. } => "corpus stats",
        Request::StoreStats { .. } => "store stats",
        Request::StoreCompact { .. } => "store compact",
        _ => req.kind(),
    }
}

/// Prints a response and persists its artefacts exactly as the one-shot
/// CLI always has: the text to stdout, the body/meta atomically to
/// `target/paper-results/`, one `[rows written to …]` line per file.
fn emit(resp: Response) -> Result<(), AnyError> {
    print!("{}", resp.text);
    if resp.ok {
        for path in persist_response(&results_dir(), &resp)? {
            println!("  [rows written to {}]", path.display());
        }
        Ok(())
    } else {
        Err(resp
            .error
            .unwrap_or_else(|| "request failed".to_owned())
            .into())
    }
}

/// Runs one request on the in-process engine and emits the response.
fn run_local(engine: &Engine, req: &Request) -> Result<(), AnyError> {
    let resp = timed(timed_label(req), || engine.run(req));
    emit(resp)
}

/// Sends one request to a daemon and emits the response, so the output
/// is byte-identical to running the same request in-process.
fn run_remote(socket: &Path, req: &Request) -> Result<(), AnyError> {
    let mut client = Client::connect(socket)
        .map_err(|e| format!("could not connect to {}: {e}", socket.display()))?;
    let resp = timed(timed_label(req), || client.request(req))?;
    emit(resp)
}

/// Drives the load generator and dumps its report for the perf gate.
fn run_loadgen(socket: &Path, opts: &LoadgenOptions) -> Result<(), AnyError> {
    println!("\n== loadgen: daemon latency/throughput ==");
    let report = loadgen(socket, opts)?;
    println!(
        "{} clients x {} x {}: p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms => {:.1} req/s",
        report.clients,
        report.requests_per_client,
        report.kind,
        report.p50_ms,
        report.p99_ms,
        report.mean_ms,
        report.serve_requests_per_second
    );
    dump_json("loadgen", &report);
    Ok(())
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: paper [table1|table2|figure6|figure7|figure8|figure9|schedbench|familysweep|\
         search|searchbench|metrics|all] \
         [--experiment NAME] [--loops-per-benchmark N] [--buses 1|2|both] [--jobs N] [--seed S] \
         [--store DIR] [--profile (schedbench only)] [--metrics] [--trace FILE]\n\
         \x20      paper search [--strategy hillclimb|anneal|ga|exhaustive] [--budget N] \
         [--space paper|extended] [--racing] [--shard I/N] [--seed S] [--store DIR]\n\
         \x20      paper search merge SHARD_FILE... [--out FILE]\n\
         \x20      paper corpus dump [--out FILE] | corpus schedule [--in FILE] | \
         corpus stats [--in FILE]\n\
         \x20      paper store stats --store DIR | store compact --store DIR\n\
         \x20      paper serve --socket PATH [--jobs N] [--results DIR] [--store DIR]\n\
         \x20      paper client --socket PATH (EXPERIMENT | ping | shutdown | corpus ACTION | \
         store ACTION)\n\
         \x20      paper loadgen --socket PATH [--clients N] [--requests M] [EXPERIMENT]"
    );
    if msg.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Parses `--shard i/n` (1-based shard `i` of `n`).
fn parse_shard(v: &str) -> Result<(u32, u32), String> {
    let Some((i, n)) = v.split_once('/') else {
        return Err(format!("--shard takes i/n (e.g. 2/3), got {v}"));
    };
    match (i.parse::<u32>(), n.parse::<u32>()) {
        (Ok(i), Ok(n)) if i >= 1 && i <= n => Ok((i, n)),
        (Ok(i), Ok(n)) => Err(format!("--shard {i}/{n} needs 1 <= i <= n")),
        _ => Err(format!("--shard takes positive integers i/n, got {v}")),
    }
}

/// `search merge`: folds shard artifacts (written by `search --shard`)
/// into one frontier. The merged bytes are independent of shard count
/// and of the order the files are named in, so any partition of a
/// space merges to the same artifact as the unsharded run's frontier.
fn search_merge(files: &[String], out: Option<&Path>) -> Result<(), AnyError> {
    use heterovliw_core::explore::{merge_shard_reports, ShardReport};

    let mut shards = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        shards.push(ShardReport::from_json_str(&text).map_err(|e| format!("{f}: {e}"))?);
    }
    let merged = merge_shard_reports(&shards)?;
    println!("\n== search merge: {} shard artifact(s) ==", shards.len());
    println!(
        "space {} ({} candidates): {} evaluations, {} frontier points",
        merged.space,
        merged.space_size,
        merged.evaluations,
        merged.frontier.len()
    );
    match &merged.best {
        Some(best) => println!("best: index {} | ED2 {:.6e}", best.index, best.ed2),
        None => println!("best: no feasible candidate found within the budget"),
    }
    let default_path = results_dir().join("search_merge.json");
    let path = out.unwrap_or(&default_path);
    write_atomic(path, &serde_json::to_string_pretty(&merged)?)?;
    println!("  [rows written to {}]", path.display());
    Ok(())
}

/// `corpus dump`: writes the corpus JSON (SPEC suite + generator
/// families) to `--out` (default `target/paper-results/corpus.json`),
/// with a `.meta.json` sidecar next to it. This is the one subcommand
/// that stays CLI-side — it exists to produce local files, which a
/// daemon response cannot do for a remote caller.
fn corpus_dump(args: &Args, out: Option<&Path>) -> Result<(), AnyError> {
    use heterovliw_core::workloads::Corpus;

    let corpus = Corpus::from_benchmarks(corpus_benchmarks(args.loops, args.seed));
    let default_path = results_dir().join("corpus.json");
    let path = out.unwrap_or(&default_path);
    corpus.save(path)?;
    // The sidecar lives next to the artefact it describes, wherever
    // --out pointed; it goes through the same atomic write path as
    // every other artefact.
    let meta_path = path.with_extension("meta.json");
    write_atomic(
        &meta_path,
        &serde_json::to_string_pretty(&CorpusMeta::new("dump", args.loops, None))?,
    )?;
    println!(
        "corpus: {} benchmarks, {} loops written to {}",
        corpus.benchmarks.len(),
        corpus.total_loops(),
        path.display()
    );
    println!("  [meta written to {}]", meta_path.display());
    Ok(())
}
