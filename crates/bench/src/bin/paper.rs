//! `paper` — regenerate the tables and figures of the CGO 2007 paper.
//!
//! ```text
//! Usage: paper [EXPERIMENT] [--loops N] [--buses 1|2|both]
//!
//! EXPERIMENT: table1 | table2 | figure6 | figure7 | figure8 | figure9 | all
//!             (default: all)
//! --loops N   loops generated per benchmark (default 40)
//! --buses B   bus configurations to run (default both)
//! ```

use std::process::ExitCode;

use heterovliw_core::explore::experiments::{self, ExperimentOptions};
use heterovliw_core::Study;
use vliw_bench::dump_json;
use vliw_ir::OpClass;
use vliw_workloads::DEFAULT_LOOPS_PER_BENCHMARK;

#[derive(Clone, Copy)]
struct Args {
    loops: usize,
    buses: BusSel,
}

#[derive(Clone, Copy)]
enum BusSel {
    One,
    Two,
    Both,
}

impl BusSel {
    fn list(self) -> &'static [u32] {
        match self {
            BusSel::One => &[1],
            BusSel::Two => &[2],
            BusSel::Both => &[1, 2],
        }
    }
}

fn main() -> ExitCode {
    let mut experiment = "all".to_owned();
    let mut args = Args {
        loops: DEFAULT_LOOPS_PER_BENCHMARK,
        buses: BusSel::Both,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--loops" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.loops = n,
                _ => return usage("--loops needs a positive integer"),
            },
            "--buses" => match it.next().as_deref() {
                Some("1") => args.buses = BusSel::One,
                Some("2") => args.buses = BusSel::Two,
                Some("both") => args.buses = BusSel::Both,
                _ => return usage("--buses takes 1, 2 or both"),
            },
            "--help" | "-h" => return usage(""),
            name if !name.starts_with('-') => experiment = name.to_owned(),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    let result = match experiment.as_str() {
        "table1" => table1(),
        "table2" => table2(args),
        "figure6" => figure6(args),
        "figure7" => figure7(args),
        "figure8" => figure8(args),
        "figure9" => figure9(args),
        "all" => table1()
            .and_then(|()| table2(args))
            .and_then(|()| figure6(args))
            .and_then(|()| figure7(args))
            .and_then(|()| figure8(args))
            .and_then(|()| figure9(args)),
        other => return usage(&format!("unknown experiment {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: paper [table1|table2|figure6|figure7|figure8|figure9|all] \
         [--loops N] [--buses 1|2|both]"
    );
    if msg.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

type AnyError = Box<dyn std::error::Error>;

fn study(args: Args, buses: u32) -> Study {
    Study::new()
        .with_loops_per_benchmark(args.loops)
        .with_buses(buses)
}

/// One row of Table 1, serialised alongside the printed table.
#[derive(serde::Serialize)]
struct Table1Row {
    class: String,
    latency: u32,
    relative_energy: f64,
}

fn table1() -> Result<(), AnyError> {
    println!("\n== Table 1: latency and relative energy per instruction class ==");
    println!("{:<24} {:>7} {:>7}", "class", "latency", "energy");
    let mut rows = Vec::new();
    for class in OpClass::SOURCE_CLASSES {
        println!(
            "{:<24} {:>7} {:>7.1}",
            class.to_string(),
            class.latency(),
            class.relative_energy()
        );
        rows.push(Table1Row {
            class: class.to_string(),
            latency: class.latency(),
            relative_energy: class.relative_energy(),
        });
    }
    dump_json("table1", &rows);
    Ok(())
}

fn table2(args: Args) -> Result<(), AnyError> {
    println!("\n== Table 2: % execution time per constraint class ==");
    let rows = study(args, 1).table2();
    println!(
        "{:<14} {:>14} {:>26} {:>18}",
        "benchmark", "recMII<resMII", "resMII<=recMII<1.3resMII", "1.3resMII<=recMII"
    );
    for r in &rows {
        println!(
            "{:<14} {:>13.2}% {:>25.2}% {:>17.2}%",
            r.benchmark, r.resource_pct, r.borderline_pct, r.recurrence_pct
        );
    }
    dump_json("table2", &rows);
    Ok(())
}

fn figure6(args: Args) -> Result<(), AnyError> {
    println!("\n== Figure 6: ED2 of heterogeneous, normalised to optimum homogeneous ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let rows = study(args, buses).figure6()?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.benchmark, r.ed2_normalized));
        }
        println!(
            "{}",
            vliw_bench::format_bar("mean", experiments::mean_normalized(&rows))
        );
        all.extend(rows);
    }
    dump_json("figure6", &all);
    Ok(())
}

fn figure7(args: Args) -> Result<(), AnyError> {
    println!("\n== Figure 7: ED2 vs number of supported frequencies ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let rows = study(args, buses).figure7()?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.menu, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure7", &all);
    Ok(())
}

fn figure8(args: Args) -> Result<(), AnyError> {
    println!("\n== Figure 8: ED2 vs ICN/cache energy shares ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let rows = study(args, buses).figure8()?;
        for r in &rows {
            let label = format!(
                ".{:<2} / {:.2}",
                (r.icn_share * 100.0) as u32,
                r.cache_share
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure8", &all);
    Ok(())
}

fn figure9(args: Args) -> Result<(), AnyError> {
    println!("\n== Figure 9: ED2 vs leakage shares (cluster/ICN/cache) ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let rows = study(args, buses).figure9()?;
        for r in &rows {
            let label = format!(
                "{:.2}/{:.2}/{:.2}",
                r.leak_cluster, r.leak_icn, r.leak_cache
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure9", &all);
    Ok(())
}

// The ExperimentOptions import is exercised implicitly through Study; keep
// the explicit reference so the bin compiles against API changes loudly.
#[allow(dead_code)]
fn _assert_api(opts: ExperimentOptions) -> ExperimentOptions {
    opts
}
