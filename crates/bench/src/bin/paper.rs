//! `paper` — regenerate the tables and figures of the CGO 2007 paper.
//!
//! ```text
//! Usage: paper [EXPERIMENT] [--experiment NAME] [--loops-per-benchmark N]
//!              [--buses 1|2|both] [--jobs N]
//!
//! EXPERIMENT: table1 | table2 | figure6 | figure7 | figure8 | figure9 |
//!             schedbench | all
//!             (default: all; positional and --experiment are equivalent)
//! --loops-per-benchmark N
//!             loops generated per benchmark (default 40 — the interactive
//!             10x scale-down; ~400 reproduces the paper's suite size).
//!             `--loops N` is an accepted shorthand.
//! --buses B   bus configurations to run (default both)
//! --jobs N    worker threads for the exploration pipeline
//!             (default 0 = available parallelism; absurd values are
//!             clamped with a warning; output is identical for every N)
//! ```
//!
//! Each experiment's elapsed wall-time is reported on stderr as
//! `[time] <experiment>: <seconds> s`, so CI perf gates and humans get
//! timing without external tooling.
//!
//! Every suite-scale row dump (`table2`, `figure6`–`figure9`) is
//! accompanied by a `<name>.meta.json` sidecar recording which suite
//! scale (loops per benchmark) and bus selection produced it, so a saved
//! artefact is self-describing without perturbing the byte-stable row
//! files themselves. `table1` is scale-independent and `schedbench`
//! embeds its scale in the record, so neither writes a sidecar.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use heterovliw_core::explore::experiments::{self, ProfiledSuite};
use heterovliw_core::Study;
use vliw_bench::dump_json;
use vliw_ir::OpClass;
use vliw_workloads::DEFAULT_LOOPS_PER_BENCHMARK;

#[derive(Clone, Copy)]
struct Args {
    loops: usize,
    buses: BusSel,
    jobs: usize,
}

#[derive(Clone, Copy)]
enum BusSel {
    One,
    Two,
    Both,
}

impl BusSel {
    fn list(self) -> &'static [u32] {
        match self {
            BusSel::One => &[1],
            BusSel::Two => &[2],
            BusSel::Both => &[1, 2],
        }
    }
}

fn main() -> ExitCode {
    let mut experiment = "all".to_owned();
    let mut args = Args {
        loops: DEFAULT_LOOPS_PER_BENCHMARK,
        buses: BusSel::Both,
        jobs: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--loops" | "--loops-per-benchmark" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.loops = n,
                _ => return usage("--loops-per-benchmark needs a positive integer"),
            },
            "--buses" => match it.next().as_deref() {
                Some("1") => args.buses = BusSel::One,
                Some("2") => args.buses = BusSel::Two,
                Some("both") => args.buses = BusSel::Both,
                _ => return usage("--buses takes 1, 2 or both"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.jobs = n,
                None => return usage("--jobs needs a non-negative integer (0 = auto)"),
            },
            "--experiment" => match it.next() {
                Some(name) => experiment = name,
                None => return usage("--experiment needs a name"),
            },
            "--help" | "-h" => return usage(""),
            name if !name.starts_with('-') => experiment = name.to_owned(),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    // Reference profiles (and the measurement memo cache they carry) are
    // shared across every experiment of this invocation: `all` profiles
    // each bus count once, and Figure 7's unrestricted-menu variant reuses
    // Figure 6's measured configurations outright.
    let mut store = ProfiledStore::new(args);
    let result = match experiment.as_str() {
        "table1" => timed("table1", table1),
        "table2" => timed("table2", || table2(args)),
        "figure6" => timed("figure6", || figure6(args, &mut store)),
        "figure7" => timed("figure7", || figure7(args, &mut store)),
        "figure8" => timed("figure8", || figure8(args, &mut store)),
        "figure9" => timed("figure9", || figure9(args, &mut store)),
        "schedbench" => timed("schedbench", || schedbench(args)),
        "all" => timed("table1", table1)
            .and_then(|()| timed("table2", || table2(args)))
            .and_then(|()| timed("figure6", || figure6(args, &mut store)))
            .and_then(|()| timed("figure7", || figure7(args, &mut store)))
            .and_then(|()| timed("figure8", || figure8(args, &mut store)))
            .and_then(|()| timed("figure9", || figure9(args, &mut store))),
        other => return usage(&format!("unknown experiment {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one experiment and reports its wall-time on stderr (stdout and the
/// JSON artefacts stay byte-identical regardless of timing or job count).
fn timed(name: &str, run: impl FnOnce() -> Result<(), AnyError>) -> Result<(), AnyError> {
    let start = Instant::now();
    let result = run();
    eprintln!("[time] {name}: {:.3} s", start.elapsed().as_secs_f64());
    result
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: paper [table1|table2|figure6|figure7|figure8|figure9|schedbench|all] \
         [--experiment NAME] [--loops-per-benchmark N] [--buses 1|2|both] [--jobs N]"
    );
    if msg.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Sidecar metadata describing which suite scale a row dump came from.
///
/// Written as `<name>.meta.json` next to `<name>.json` so saved artefacts
/// are self-describing (a 40-loop interactive dump and a ~400-loop
/// paper-scale dump are distinguishable after the fact) without changing a
/// single byte of the row files the determinism and perf gates compare.
#[derive(serde::Serialize)]
struct DumpMeta {
    experiment: String,
    loops_per_benchmark: usize,
    buses: Vec<u32>,
}

fn dump_meta(name: &str, args: Args) {
    dump_json(
        &format!("{name}.meta"),
        &DumpMeta {
            experiment: name.to_owned(),
            loops_per_benchmark: args.loops,
            buses: args.buses.list().to_vec(),
        },
    );
}

fn study(args: Args, buses: u32) -> Study {
    Study::new()
        .with_loops_per_benchmark(args.loops)
        .with_buses(buses)
        .with_jobs(args.jobs)
}

/// Lazily profiled suites, one per bus count, shared by every experiment
/// of one invocation so reference profiling runs once and the measurement
/// memo cache accumulates across figures.
struct ProfiledStore {
    args: Args,
    per_bus: HashMap<u32, ProfiledSuite>,
}

impl ProfiledStore {
    fn new(args: Args) -> Self {
        ProfiledStore {
            args,
            per_bus: HashMap::new(),
        }
    }

    fn get(&mut self, buses: u32) -> Result<&ProfiledSuite, AnyError> {
        if !self.per_bus.contains_key(&buses) {
            let profiled = study(self.args, buses).profile()?;
            self.per_bus.insert(buses, profiled);
        }
        Ok(&self.per_bus[&buses])
    }
}

/// One row of Table 1, serialised alongside the printed table.
#[derive(serde::Serialize)]
struct Table1Row {
    class: String,
    latency: u32,
    relative_energy: f64,
}

fn table1() -> Result<(), AnyError> {
    println!("\n== Table 1: latency and relative energy per instruction class ==");
    println!("{:<24} {:>7} {:>7}", "class", "latency", "energy");
    let mut rows = Vec::new();
    for class in OpClass::SOURCE_CLASSES {
        println!(
            "{:<24} {:>7} {:>7.1}",
            class.to_string(),
            class.latency(),
            class.relative_energy()
        );
        rows.push(Table1Row {
            class: class.to_string(),
            latency: class.latency(),
            relative_energy: class.relative_energy(),
        });
    }
    dump_json("table1", &rows);
    Ok(())
}

fn table2(args: Args) -> Result<(), AnyError> {
    println!("\n== Table 2: % execution time per constraint class ==");
    let rows = study(args, 1).table2();
    println!(
        "{:<14} {:>14} {:>26} {:>18}",
        "benchmark", "recMII<resMII", "resMII<=recMII<1.3resMII", "1.3resMII<=recMII"
    );
    for r in &rows {
        println!(
            "{:<14} {:>13.2}% {:>25.2}% {:>17.2}%",
            r.benchmark, r.resource_pct, r.borderline_pct, r.recurrence_pct
        );
    }
    dump_json("table2", &rows);
    dump_meta("table2", args);
    Ok(())
}

fn figure6(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 6: ED2 of heterogeneous, normalised to optimum homogeneous ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure6_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.benchmark, r.ed2_normalized));
        }
        println!(
            "{}",
            vliw_bench::format_bar("mean", experiments::mean_normalized(&rows))
        );
        all.extend(rows);
    }
    dump_json("figure6", &all);
    dump_meta("figure6", args);
    Ok(())
}

fn figure7(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 7: ED2 vs number of supported frequencies ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure7_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.menu, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure7", &all);
    dump_meta("figure7", args);
    Ok(())
}

fn figure8(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 8: ED2 vs ICN/cache energy shares ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure8_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            let label = format!(
                ".{:<2} / {:.2}",
                (r.icn_share * 100.0) as u32,
                r.cache_share
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure8", &all);
    dump_meta("figure8", args);
    Ok(())
}

/// One `schedbench` record: raw scheduler throughput on the synthetic
/// suite. Unlike the figure/table dumps this artefact carries wall-clock
/// measurements, so it is *not* byte-stable across runs — it exists for
/// the CI perf gate, which compares `loops_per_second` against the
/// committed baseline.
#[derive(serde::Serialize)]
struct SchedBenchRecord {
    experiment: String,
    loops_per_benchmark: usize,
    loops_scheduled: u64,
    wall_time_s: f64,
    loops_per_second: f64,
}

/// `schedbench`: modulo-schedules every loop of the suite on the reference
/// homogeneous machine and on one heterogeneous configuration, end to end
/// through the §4 pipeline (partition + IMS + IT retry), and reports the
/// aggregate loops-scheduled-per-second throughput.
fn schedbench(args: Args) -> Result<(), AnyError> {
    use heterovliw_core::machine::{ClockedConfig, MachineDesign, Time};
    use heterovliw_core::sched::{schedule_loop_ws, SchedWorkspace, ScheduleOptions};

    println!("\n== schedbench: scheduler throughput (loops/second) ==");
    let suite = heterovliw_core::workloads::suite(args.loops);
    let design = MachineDesign::paper_machine(1);
    let configs = [
        ClockedConfig::reference(design),
        ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
    ];
    let base_opts = ScheduleOptions::default();
    // One workspace for the whole run, exactly as the exploration pipeline
    // holds one per worker thread.
    let mut ws = SchedWorkspace::new();
    let mut scheduled = 0u64;
    let start = Instant::now();
    for bench in &suite {
        for l in &bench.loops {
            let mut opts = base_opts.clone();
            opts.trip_count = l.trip_count();
            for config in &configs {
                schedule_loop_ws(l.ddg(), config, None, &opts, &mut ws)
                    .map_err(|e| format!("schedbench: {e}"))?;
                scheduled += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let lps = if wall > 0.0 {
        scheduled as f64 / wall
    } else {
        f64::INFINITY
    };
    println!("scheduled {scheduled} loops in {wall:.3} s => {lps:.1} loops/s");
    dump_json(
        "schedbench",
        &SchedBenchRecord {
            experiment: "schedbench".to_owned(),
            loops_per_benchmark: args.loops,
            loops_scheduled: scheduled,
            wall_time_s: wall,
            loops_per_second: lps,
        },
    );
    Ok(())
}

fn figure9(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 9: ED2 vs leakage shares (cluster/ICN/cache) ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure9_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            let label = format!(
                "{:.2}/{:.2}/{:.2}",
                r.leak_cluster, r.leak_icn, r.leak_cache
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure9", &all);
    dump_meta("figure9", args);
    Ok(())
}
