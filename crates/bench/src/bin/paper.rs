//! `paper` — regenerate the tables and figures of the CGO 2007 paper.
//!
//! ```text
//! Usage: paper [EXPERIMENT] [--experiment NAME] [--loops N]
//!              [--buses 1|2|both] [--jobs N]
//!
//! EXPERIMENT: table1 | table2 | figure6 | figure7 | figure8 | figure9 | all
//!             (default: all; positional and --experiment are equivalent)
//! --loops N   loops generated per benchmark (default 40)
//! --buses B   bus configurations to run (default both)
//! --jobs N    worker threads for the exploration pipeline
//!             (default 0 = available parallelism; output is identical
//!             for every N)
//! ```
//!
//! Each experiment's elapsed wall-time is reported on stderr as
//! `[time] <experiment>: <seconds> s`, so CI perf gates and humans get
//! timing without external tooling.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use heterovliw_core::explore::experiments::{self, ProfiledSuite};
use heterovliw_core::Study;
use vliw_bench::dump_json;
use vliw_ir::OpClass;
use vliw_workloads::DEFAULT_LOOPS_PER_BENCHMARK;

#[derive(Clone, Copy)]
struct Args {
    loops: usize,
    buses: BusSel,
    jobs: usize,
}

#[derive(Clone, Copy)]
enum BusSel {
    One,
    Two,
    Both,
}

impl BusSel {
    fn list(self) -> &'static [u32] {
        match self {
            BusSel::One => &[1],
            BusSel::Two => &[2],
            BusSel::Both => &[1, 2],
        }
    }
}

fn main() -> ExitCode {
    let mut experiment = "all".to_owned();
    let mut args = Args {
        loops: DEFAULT_LOOPS_PER_BENCHMARK,
        buses: BusSel::Both,
        jobs: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--loops" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.loops = n,
                _ => return usage("--loops needs a positive integer"),
            },
            "--buses" => match it.next().as_deref() {
                Some("1") => args.buses = BusSel::One,
                Some("2") => args.buses = BusSel::Two,
                Some("both") => args.buses = BusSel::Both,
                _ => return usage("--buses takes 1, 2 or both"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.jobs = n,
                None => return usage("--jobs needs a non-negative integer (0 = auto)"),
            },
            "--experiment" => match it.next() {
                Some(name) => experiment = name,
                None => return usage("--experiment needs a name"),
            },
            "--help" | "-h" => return usage(""),
            name if !name.starts_with('-') => experiment = name.to_owned(),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    // Reference profiles (and the measurement memo cache they carry) are
    // shared across every experiment of this invocation: `all` profiles
    // each bus count once, and Figure 7's unrestricted-menu variant reuses
    // Figure 6's measured configurations outright.
    let mut store = ProfiledStore::new(args);
    let result = match experiment.as_str() {
        "table1" => timed("table1", table1),
        "table2" => timed("table2", || table2(args)),
        "figure6" => timed("figure6", || figure6(args, &mut store)),
        "figure7" => timed("figure7", || figure7(args, &mut store)),
        "figure8" => timed("figure8", || figure8(args, &mut store)),
        "figure9" => timed("figure9", || figure9(args, &mut store)),
        "all" => timed("table1", table1)
            .and_then(|()| timed("table2", || table2(args)))
            .and_then(|()| timed("figure6", || figure6(args, &mut store)))
            .and_then(|()| timed("figure7", || figure7(args, &mut store)))
            .and_then(|()| timed("figure8", || figure8(args, &mut store)))
            .and_then(|()| timed("figure9", || figure9(args, &mut store))),
        other => return usage(&format!("unknown experiment {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one experiment and reports its wall-time on stderr (stdout and the
/// JSON artefacts stay byte-identical regardless of timing or job count).
fn timed(name: &str, run: impl FnOnce() -> Result<(), AnyError>) -> Result<(), AnyError> {
    let start = Instant::now();
    let result = run();
    eprintln!("[time] {name}: {:.3} s", start.elapsed().as_secs_f64());
    result
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: paper [table1|table2|figure6|figure7|figure8|figure9|all] \
         [--experiment NAME] [--loops N] [--buses 1|2|both] [--jobs N]"
    );
    if msg.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

type AnyError = Box<dyn std::error::Error>;

fn study(args: Args, buses: u32) -> Study {
    Study::new()
        .with_loops_per_benchmark(args.loops)
        .with_buses(buses)
        .with_jobs(args.jobs)
}

/// Lazily profiled suites, one per bus count, shared by every experiment
/// of one invocation so reference profiling runs once and the measurement
/// memo cache accumulates across figures.
struct ProfiledStore {
    args: Args,
    per_bus: HashMap<u32, ProfiledSuite>,
}

impl ProfiledStore {
    fn new(args: Args) -> Self {
        ProfiledStore {
            args,
            per_bus: HashMap::new(),
        }
    }

    fn get(&mut self, buses: u32) -> Result<&ProfiledSuite, AnyError> {
        if !self.per_bus.contains_key(&buses) {
            let profiled = study(self.args, buses).profile()?;
            self.per_bus.insert(buses, profiled);
        }
        Ok(&self.per_bus[&buses])
    }
}

/// One row of Table 1, serialised alongside the printed table.
#[derive(serde::Serialize)]
struct Table1Row {
    class: String,
    latency: u32,
    relative_energy: f64,
}

fn table1() -> Result<(), AnyError> {
    println!("\n== Table 1: latency and relative energy per instruction class ==");
    println!("{:<24} {:>7} {:>7}", "class", "latency", "energy");
    let mut rows = Vec::new();
    for class in OpClass::SOURCE_CLASSES {
        println!(
            "{:<24} {:>7} {:>7.1}",
            class.to_string(),
            class.latency(),
            class.relative_energy()
        );
        rows.push(Table1Row {
            class: class.to_string(),
            latency: class.latency(),
            relative_energy: class.relative_energy(),
        });
    }
    dump_json("table1", &rows);
    Ok(())
}

fn table2(args: Args) -> Result<(), AnyError> {
    println!("\n== Table 2: % execution time per constraint class ==");
    let rows = study(args, 1).table2();
    println!(
        "{:<14} {:>14} {:>26} {:>18}",
        "benchmark", "recMII<resMII", "resMII<=recMII<1.3resMII", "1.3resMII<=recMII"
    );
    for r in &rows {
        println!(
            "{:<14} {:>13.2}% {:>25.2}% {:>17.2}%",
            r.benchmark, r.resource_pct, r.borderline_pct, r.recurrence_pct
        );
    }
    dump_json("table2", &rows);
    Ok(())
}

fn figure6(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 6: ED2 of heterogeneous, normalised to optimum homogeneous ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure6_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.benchmark, r.ed2_normalized));
        }
        println!(
            "{}",
            vliw_bench::format_bar("mean", experiments::mean_normalized(&rows))
        );
        all.extend(rows);
    }
    dump_json("figure6", &all);
    Ok(())
}

fn figure7(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 7: ED2 vs number of supported frequencies ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure7_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            println!("{}", vliw_bench::format_bar(&r.menu, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure7", &all);
    Ok(())
}

fn figure8(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 8: ED2 vs ICN/cache energy shares ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure8_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            let label = format!(
                ".{:<2} / {:.2}",
                (r.icn_share * 100.0) as u32,
                r.cache_share
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure8", &all);
    Ok(())
}

fn figure9(args: Args, store: &mut ProfiledStore) -> Result<(), AnyError> {
    println!("\n== Figure 9: ED2 vs leakage shares (cluster/ICN/cache) ==");
    let mut all = Vec::new();
    for &buses in args.buses.list() {
        println!("-- {buses} bus(es) --");
        let study = study(args, buses);
        let rows =
            experiments::figure9_with(store.get(buses)?, study.options(), &study.executor())?;
        for r in &rows {
            let label = format!(
                "{:.2}/{:.2}/{:.2}",
                r.leak_cluster, r.leak_icn, r.leak_cache
            );
            println!("{}", vliw_bench::format_bar(&label, r.mean_ed2_normalized));
        }
        all.extend(rows);
    }
    dump_json("figure9", &all);
    Ok(())
}
