//! Shared helpers for the table/figure regeneration benches.
//!
//! Each bench target in `benches/` regenerates one table or figure of the
//! paper: it prints the rows (and writes them as JSON next to Criterion's
//! output) before benchmarking the computational kernel behind it.
//!
//! The actual write discipline (atomic temp-file-plus-rename) and the
//! bar rendering live in `vliw_api::artifacts`, shared with the CLI and
//! the daemon; this crate only adds the bench-local convention of *where*
//! artefacts go ([`results_dir`]).

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

pub use vliw_api::artifacts::format_bar;

/// Where experiment row dumps go (`target/paper-results/`).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serialises `rows` as pretty JSON to `target/paper-results/<name>.json`.
///
/// The write is atomic (via [`vliw_api::artifacts::write_atomic`]), so a
/// concurrent reader never observes a truncated or partially written
/// artefact — several `paper` processes may run at once under the test
/// harness or CI.
///
/// # Panics
///
/// Panics on I/O or serialisation failure (benches want loud failures).
pub fn dump_json<T: Serialize>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(rows).expect("serialise rows");
    vliw_api::artifacts::write_atomic(&path, &json).expect("write rows");
    println!("  [rows written to {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_formatting() {
        let s = format_bar("x", 0.8);
        assert!(s.contains("0.800"));
        assert!(s.contains('#'));
    }

    #[test]
    fn dump_round_trips() {
        dump_json("selftest", &vec![1, 2, 3]);
        let read = std::fs::read_to_string(results_dir().join("selftest.json")).unwrap();
        assert!(read.contains('2'));
    }
}
