//! CLI contract tests for the `paper` binary: exit codes, `--help`, and the
//! JSON artefacts scripting depends on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn paper(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paper"))
        .args(args)
        .output()
        .expect("run paper binary")
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    for flag in ["--help", "-h"] {
        let out = paper(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(
            text.contains("usage: paper"),
            "usage text on {flag}: {text}"
        );
        assert!(text.contains("--loops"), "flags documented: {text}");
    }
}

#[test]
fn bad_args_exit_nonzero() {
    let cases: &[&[&str]] = &[
        &["--loops"],               // missing value
        &["--loops", "0"],          // not positive
        &["--loops", "many"],       // not a number
        &["--buses", "3"],          // unsupported bus count
        &["--jobs"],                // missing value
        &["--jobs", "many"],        // not a number
        &["--experiment"],          // missing name
        &["--experiment", "fig42"], // unknown experiment
        &["--frobnicate"],          // unknown flag
        &["figure42"],              // unknown experiment
    ];
    for args in cases {
        let out = paper(args);
        assert!(!out.status.success(), "paper {args:?} must fail");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(text.contains("error:"), "stderr explains {args:?}: {text}");
        assert!(text.contains("usage: paper"), "usage shown for {args:?}");
    }
}

#[test]
fn table1_smoke_produces_json() {
    let out = paper(&["table1", "--loops", "2"]);
    assert!(
        out.status.success(),
        "table1 run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "prints the table: {stdout}");

    let json = std::fs::read_to_string(results_dir().join("table1.json")).expect("table1.json");
    assert!(json.trim_start().starts_with('['), "rows are a JSON array");
    for key in ["\"class\"", "\"latency\"", "\"relative_energy\"", "fdiv"] {
        assert!(json.contains(key), "json has {key}: {json}");
    }
}

#[test]
fn experiment_flag_and_jobs_report_wall_time() {
    // `--experiment NAME` is equivalent to the positional form, `--jobs`
    // is accepted, and elapsed wall-time lands on stderr. Uses figure7 so
    // this test's JSON artefact is disjoint from every other test's (the
    // harness runs tests — and hence `paper` processes — concurrently).
    let out = paper(&[
        "--experiment",
        "figure7",
        "--loops",
        "1",
        "--buses",
        "2",
        "--jobs",
        "2",
    ]);
    assert!(
        out.status.success(),
        "figure7 via --experiment: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[time] figure7:"),
        "wall-time on stderr: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 7"), "prints the figure: {stdout}");
}

#[test]
fn parallel_json_is_byte_identical_to_serial() {
    // The acceptance property, end to end through the binary: the JSON
    // artefact of a parallel run matches the serial run byte for byte.
    let run = |jobs: &str| -> String {
        let out = paper(&[
            "--experiment",
            "figure6",
            "--loops",
            "1",
            "--buses",
            "1",
            "--jobs",
            jobs,
        ]);
        assert!(
            out.status.success(),
            "figure6 --jobs {jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(results_dir().join("figure6.json")).expect("figure6.json")
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(serial, parallel, "--jobs must not change the JSON");
    assert!(serial.contains("ed2_normalized"));
}

#[test]
fn table2_small_run_produces_json_rows() {
    let out = paper(&["table2", "--loops", "2"]);
    assert!(
        out.status.success(),
        "table2 run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(results_dir().join("table2.json")).expect("table2.json");
    for key in ["\"benchmark\"", "171.swim", "301.apsi"] {
        assert!(json.contains(key), "json has {key}");
    }
}
