//! CLI contract tests for the `paper` binary: exit codes, `--help`, and the
//! JSON artefacts scripting depends on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn paper(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paper"))
        .args(args)
        .output()
        .expect("run paper binary")
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    for flag in ["--help", "-h"] {
        let out = paper(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(
            text.contains("usage: paper"),
            "usage text on {flag}: {text}"
        );
        assert!(text.contains("--loops"), "flags documented: {text}");
    }
}

#[test]
fn bad_args_exit_nonzero() {
    let cases: &[&[&str]] = &[
        &["--loops"],               // missing value
        &["--loops", "0"],          // not positive
        &["--loops", "many"],       // not a number
        &["--buses", "3"],          // unsupported bus count
        &["--jobs"],                // missing value
        &["--jobs", "many"],        // not a number
        &["--experiment"],          // missing name
        &["--experiment", "fig42"], // unknown experiment
        &["--frobnicate"],          // unknown flag
        &["figure42"],              // unknown experiment
    ];
    for args in cases {
        let out = paper(args);
        assert!(!out.status.success(), "paper {args:?} must fail");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(text.contains("error:"), "stderr explains {args:?}: {text}");
        assert!(text.contains("usage: paper"), "usage shown for {args:?}");
    }
}

#[test]
fn table1_smoke_produces_json() {
    let out = paper(&["table1", "--loops", "2"]);
    assert!(
        out.status.success(),
        "table1 run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "prints the table: {stdout}");

    let json = std::fs::read_to_string(results_dir().join("table1.json")).expect("table1.json");
    assert!(json.trim_start().starts_with('['), "rows are a JSON array");
    for key in ["\"class\"", "\"latency\"", "\"relative_energy\"", "fdiv"] {
        assert!(json.contains(key), "json has {key}: {json}");
    }
}

#[test]
fn experiment_flag_and_jobs_report_wall_time() {
    // `--experiment NAME` is equivalent to the positional form, `--jobs`
    // is accepted, and elapsed wall-time lands on stderr. Uses figure7 so
    // this test's JSON artefact is disjoint from every other test's (the
    // harness runs tests — and hence `paper` processes — concurrently).
    let out = paper(&[
        "--experiment",
        "figure7",
        "--loops",
        "1",
        "--buses",
        "2",
        "--jobs",
        "2",
    ]);
    assert!(
        out.status.success(),
        "figure7 via --experiment: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[time] figure7:"),
        "wall-time on stderr: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 7"), "prints the figure: {stdout}");
}

#[test]
fn parallel_json_is_byte_identical_to_serial() {
    // The acceptance property, end to end through the binary: the JSON
    // artefact of a parallel run matches the serial run byte for byte.
    let run = |jobs: &str| -> String {
        let out = paper(&[
            "--experiment",
            "figure6",
            "--loops",
            "1",
            "--buses",
            "1",
            "--jobs",
            jobs,
        ]);
        assert!(
            out.status.success(),
            "figure6 --jobs {jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(results_dir().join("figure6.json")).expect("figure6.json")
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(serial, parallel, "--jobs must not change the JSON");
    assert!(serial.contains("ed2_normalized"));
}

#[test]
fn table2_small_run_produces_json_rows() {
    let out = paper(&["table2", "--loops", "2"]);
    assert!(
        out.status.success(),
        "table2 run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(results_dir().join("table2.json")).expect("table2.json");
    for key in ["\"benchmark\"", "171.swim", "301.apsi"] {
        assert!(json.contains(key), "json has {key}");
    }
}

#[test]
fn search_bad_args_exit_nonzero() {
    let cases: &[&[&str]] = &[
        &["search", "--strategy"],                           // missing value
        &["search", "--strategy", "frobnicate"],             // unknown strategy
        &["search", "--budget"],                             // missing value
        &["search", "--budget", "0"],                        // not positive
        &["search", "--budget", "many"],                     // not a number
        &["search", "--space", "bogus"],                     // unknown space
        &["--seed"],                                         // missing value
        &["--seed", "minus-one"],                            // not a number
        &["figure6", "--strategy", "ga"],                    // search-only flag
        &["table2", "--budget", "4"],                        // search-only flag
        &["corpus", "dump", "--space", "paper"],             // search-only flag
        &["figure6", "--racing"],                            // search-only flag
        &["table2", "--shard", "1/2"],                       // search-only flag
        &["search", "--shard"],                              // missing value
        &["search", "--shard", "3"],                         // not i/n
        &["search", "--shard", "a/b"],                       // not numbers
        &["search", "--shard", "0/2"],                       // shard is 1-based
        &["search", "--shard", "3/2"],                       // i beyond n
        &["search", "merge"],                                // no shard files
        &["search", "merge", "x.json", "--budget", "4"],     // flags don't apply
        &["search", "merge", "x.json", "--store", "/tmp/s"], // reads files, no store
    ];
    for args in cases {
        let out = paper(args);
        assert!(!out.status.success(), "paper {args:?} must fail");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(text.contains("usage: paper"), "usage shown for {args:?}");
    }
}

#[test]
fn search_merge_rejects_unreadable_and_invalid_shards() {
    let out = paper(&["search", "merge", "/nonexistent/shard.json"]);
    assert!(!out.status.success(), "missing shard file must fail");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("error:"), "stderr explains: {text}");

    // A JSON file that is not a shard artifact fails the strict parse.
    let dir = std::env::temp_dir();
    let bogus = dir.join(format!("cli_bogus_shard_{}.json", std::process::id()));
    std::fs::write(&bogus, "{\"strategy\": \"ga\"}").expect("write bogus shard");
    let out = paper(&["search", "merge", bogus.to_str().expect("utf-8 path")]);
    std::fs::remove_file(&bogus).ok();
    assert!(!out.status.success(), "non-shard JSON must fail");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("missing field"),
        "strict parse named the gap: {text}"
    );
}

/// The acceptance criterion through the binary: `paper search` emits a
/// deterministic Pareto-frontier JSON, byte-identical across `--jobs`.
#[test]
fn search_json_is_byte_identical_across_job_counts() {
    let run = |jobs: &str| -> String {
        let out = paper(&[
            "search",
            "--strategy",
            "anneal",
            "--budget",
            "6",
            "--seed",
            "2",
            "--loops",
            "1",
            "--buses",
            "1",
            "--jobs",
            jobs,
        ]);
        assert!(
            out.status.success(),
            "search --jobs {jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(results_dir().join("search.json")).expect("search.json")
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(serial, parallel, "--jobs must not change search.json");
    for key in [
        "\"strategy\": \"anneal\"",
        "\"space\": \"paper\"",
        "\"frontier\"",
        "\"trace\"",
        "\"ed2\"",
    ] {
        assert!(serial.contains(key), "search.json has {key}");
    }
    // The sidecar records every knob that shaped the run.
    let meta = std::fs::read_to_string(results_dir().join("search.meta.json")).expect("sidecar");
    for key in ["\"budget\": 6", "\"seed\": 2", "\"strategy\": \"anneal\""] {
        assert!(meta.contains(key), "meta has {key}: {meta}");
    }
}

/// The scaled-search contract, end to end through the binary. One test
/// (not several) because every shard run writes the same
/// `search_shard.json` artifact — the phases must not interleave.
///
/// Phase 1 (sharding): the paper grid searched as 3 shards and as 1
/// shard merges to byte-identical frontiers regardless of shard count
/// and merge order. Phase 2 (racing): a racing run of the full grid
/// produces the exact bytes of the non-racing run. Phase 3 (warm
/// start): re-running the racing search against the now-populated
/// store replays the same bytes without re-measuring, and the store
/// reports the persisted evaluations.
#[test]
fn sharded_racing_and_warm_searches_reproduce_the_plain_frontier() {
    let dir = std::env::temp_dir().join(format!("cli_scale_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = |name: &str| dir.join(name).to_str().expect("utf-8 path").to_owned();

    let shard_run = |extra: &[&str]| {
        let mut args = vec![
            "search",
            "--strategy",
            "exhaustive",
            "--budget",
            "64",
            "--loops",
            "1",
            "--buses",
            "1",
            "--jobs",
            "2",
        ];
        args.extend_from_slice(extra);
        let out = paper(&args);
        assert!(
            out.status.success(),
            "paper {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(results_dir().join("search_shard.json")).expect("shard artifact")
    };

    // 3-way and 1-way partitions of the same grid.
    for i in 1..=3 {
        let artifact = shard_run(&["--shard", &format!("{i}/3")]);
        std::fs::write(path(&format!("shard{i}.json")), artifact).expect("stash shard");
    }
    let whole = shard_run(&["--shard", "1/1"]);
    std::fs::write(path("whole.json"), &whole).expect("stash 1/1 shard");

    let merge = |files: &[&str], out_name: &str| -> String {
        let out_path = path(out_name);
        let mut args = vec!["search", "merge"];
        args.extend_from_slice(files);
        args.extend_from_slice(&["--out", &out_path]);
        let out = paper(&args);
        assert!(
            out.status.success(),
            "paper {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&out_path).expect("merged artifact")
    };
    let s1 = path("shard1.json");
    let s2 = path("shard2.json");
    let s3 = path("shard3.json");
    let w = path("whole.json");
    let merged = merge(&[&s1, &s2, &s3], "merged3.json");
    let reversed = merge(&[&s3, &s2, &s1], "merged3r.json");
    let one_way = merge(&[&w], "merged1.json");
    assert_eq!(merged, reversed, "merge order must not change the bytes");
    assert_eq!(merged, one_way, "shard count must not change the bytes");
    for key in ["\"evaluations\": 20", "\"frontier\"", "\"best\""] {
        assert!(merged.contains(key), "merged artifact has {key}: {merged}");
    }

    // Racing reorders when candidates reach full measurement; on full
    // coverage it must change nothing at all.
    let raced = shard_run(&["--shard", "1/1", "--racing"]);
    assert_eq!(raced, whole, "racing must not change the frontier bytes");

    // Warm start: a cold racing run populates the store; a fresh
    // process replays it byte for byte.
    let store = path("store");
    let cold = shard_run(&["--shard", "1/1", "--racing", "--store", &store]);
    assert_eq!(cold, whole, "the store must not change the frontier bytes");
    let warm = shard_run(&["--shard", "1/1", "--racing", "--store", &store]);
    assert_eq!(warm, cold, "a warm replay reproduces the cold bytes");

    let stats = paper(&["store", "stats", "--store", &store]);
    assert!(
        stats.status.success(),
        "store stats: {}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let stats_text = String::from_utf8_lossy(&stats.stdout).to_string();
    assert!(
        !stats_text.contains("+ 0 evals"),
        "the search persisted eval records: {stats_text}"
    );
    assert!(
        stats_text.contains("evals"),
        "store stats report eval records: {stats_text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_bad_args_exit_nonzero() {
    let cases: &[&[&str]] = &[
        &["corpus"],                                // missing action
        &["corpus", "frobnicate"],                  // unknown action
        &["corpus", "dump", "extra"],               // trailing positional
        &["corpus", "dump", "--experiment", "x"],   // incompatible flag
        &["corpus", "dump", "--in", "x.json"],      // dump generates, no --in
        &["corpus", "schedule", "--out", "x.json"], // --out is dump-only
        &["figure6", "--out", "x.json"],            // --in/--out are corpus-only
        &["table2", "--in", "x.json"],
        &["--in"],  // missing value
        &["--out"], // missing value
    ];
    for args in cases {
        let out = paper(args);
        assert!(!out.status.success(), "paper {args:?} must fail");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(text.contains("usage: paper"), "usage shown for {args:?}");
    }
}

#[test]
fn corpus_schedule_rejects_bad_file() {
    let out = paper(&["corpus", "schedule", "--in", "/nonexistent/corpus.json"]);
    assert!(!out.status.success(), "missing corpus file must fail");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("error:"), "stderr explains: {text}");
}

/// The tentpole acceptance criterion, end to end through the binary: a
/// corpus dumped by `paper corpus dump` reloads and schedules to
/// byte-identical JSON vs. the in-memory suite, at `--jobs 1` and
/// `--jobs 4`.
#[test]
fn corpus_dump_then_schedule_matches_in_memory_at_any_job_count() {
    let dir = std::env::temp_dir();
    let corpus_path = dir.join(format!("cli_corpus_{}.json", std::process::id()));
    let corpus_arg = corpus_path.to_str().expect("utf-8 temp path");

    let out = paper(&["corpus", "dump", "--loops", "2", "--out", corpus_arg]);
    assert!(
        out.status.success(),
        "corpus dump: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&corpus_path).expect("corpus file written");
    assert!(doc.contains("heterovliw-corpus"), "format tag present");
    assert!(doc.contains("\"stress\""), "family benchmarks included");
    // The sidecar lands next to the --out file and records the scale.
    let meta_path = corpus_path.with_extension("meta.json");
    let meta = std::fs::read_to_string(&meta_path).expect("sidecar next to corpus");
    assert!(meta.contains("\"loops_per_benchmark\": 2"), "{meta}");
    std::fs::remove_file(&meta_path).ok();

    let schedule = |args: &[&str]| -> String {
        let out = paper(args);
        assert!(
            out.status.success(),
            "paper {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(results_dir().join("corpus_schedule.json"))
            .expect("corpus_schedule.json")
    };
    let in_memory = schedule(&["corpus", "schedule", "--loops", "2", "--jobs", "1"]);
    let from_file_j1 = schedule(&["corpus", "schedule", "--in", corpus_arg, "--jobs", "1"]);
    let from_file_j4 = schedule(&["corpus", "schedule", "--in", corpus_arg, "--jobs", "4"]);
    std::fs::remove_file(&corpus_path).ok();

    assert_eq!(
        in_memory, from_file_j1,
        "reloaded corpus must schedule byte-identically to the in-memory suite"
    );
    assert_eq!(
        from_file_j1, from_file_j4,
        "--jobs must not change the JSON"
    );
    for key in [
        "\"reference\"",
        "\"heterogeneous\"",
        "\"it_ns\"",
        "membound",
    ] {
        assert!(in_memory.contains(key), "rows have {key}");
    }
}

#[test]
fn corpus_stats_summarises_families() {
    let out = paper(&["corpus", "stats", "--loops", "2"]);
    assert!(
        out.status.success(),
        "corpus stats: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json =
        std::fs::read_to_string(results_dir().join("corpus_stats.json")).expect("corpus_stats");
    for key in ["multirec", "ilpwide", "\"mean_rec_mii\"", "168.wupwise"] {
        assert!(json.contains(key), "stats have {key}");
    }
}

#[test]
fn familysweep_emits_rows_per_family_and_menu() {
    let out = paper(&["familysweep", "--loops", "1", "--buses", "2"]);
    assert!(
        out.status.success(),
        "familysweep: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json =
        std::fs::read_to_string(results_dir().join("familysweep.json")).expect("familysweep");
    for key in [
        "membound", "ilpwide", "multirec", "stress", "\"menu\"", "any freq",
    ] {
        assert!(json.contains(key), "sweep has {key}");
    }
}
