//! Service determinism through the real binary: the same `Request` run
//! via the one-shot CLI and via the `paper serve` daemon must produce
//! byte-identical JSON bodies — sequentially, with 4 concurrent
//! clients, and at `--jobs 1` and `--jobs 4`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use vliw_api::{BusSel, Request, Response, RunParams, StoreConfig};

fn paper(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paper"))
        .args(args)
        .output()
        .expect("run paper binary")
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results")
}

/// A `paper serve` child that is killed on drop, so a failing assertion
/// never leaks a daemon holding the socket.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(name: &str, jobs: &str) -> Self {
        let socket = std::env::temp_dir().join(format!("paper-{name}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_paper"))
            .args([
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--jobs",
                jobs,
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn paper serve");
        let daemon = Self { child, socket };
        let deadline = Instant::now() + Duration::from_secs(30);
        while UnixStream::connect(&daemon.socket).is_err() {
            assert!(
                Instant::now() < deadline,
                "daemon never bound {:?}",
                daemon.socket
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn socket_arg(&self) -> &str {
        self.socket.to_str().unwrap()
    }

    /// Sends one request over a raw socket and parses the JSON reply.
    fn raw_request(&self, req: &Request) -> Response {
        let mut stream = UnixStream::connect(&self.socket).expect("connect");
        stream
            .write_all(req.to_json_string().as_bytes())
            .expect("send request");
        stream.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .expect("read reply");
        Response::from_json_str(reply.trim_end()).expect("parse reply")
    }

    /// Shuts the daemon down via `paper client ... shutdown` and checks
    /// the graceful-exit contract: exit 0 and socket removed.
    fn shutdown(mut self) {
        let out = paper(&["client", "--socket", self.socket_arg(), "shutdown"]);
        assert!(
            out.status.success(),
            "shutdown client: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("daemon shutting down"),
            "shutdown acknowledged"
        );
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exits 0 on graceful shutdown");
        assert!(!self.socket.exists(), "socket file removed on shutdown");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// The satellite acceptance criterion end to end: one-shot CLI vs.
/// daemon, sequential and 4-way concurrent, at `--jobs 1` and `--jobs 4`,
/// all byte-identical.
#[test]
fn cli_and_daemon_agree_byte_for_byte_across_job_counts() {
    let figure8 = Request::Figure8(RunParams {
        loops: 2,
        buses: BusSel::One,
        seed: 0,
        store: StoreConfig::none(),
        profile: false,
    });
    let mut bodies = Vec::new();
    for jobs in ["1", "4"] {
        // One-shot CLI run: capture stdout and the persisted artefacts.
        let oneshot = paper(&["figure8", "--loops", "2", "--buses", "1", "--jobs", jobs]);
        assert!(
            oneshot.status.success(),
            "figure8 --jobs {jobs}: {}",
            String::from_utf8_lossy(&oneshot.stderr)
        );
        let cli_body =
            std::fs::read_to_string(results_dir().join("figure8.json")).expect("figure8.json");
        let cli_meta = std::fs::read_to_string(results_dir().join("figure8.meta.json"))
            .expect("figure8.meta.json");

        let daemon = Daemon::start(&format!("agree-j{jobs}"), jobs);

        // Sequential: the client's stdout matches the one-shot run.
        let client = paper(&[
            "client",
            "--socket",
            daemon.socket_arg(),
            "figure8",
            "--loops",
            "2",
            "--buses",
            "1",
        ]);
        assert!(
            client.status.success(),
            "client figure8: {}",
            String::from_utf8_lossy(&client.stderr)
        );
        assert_eq!(
            client.stdout, oneshot.stdout,
            "daemon client stdout == one-shot CLI stdout (jobs {jobs})"
        );

        // Raw wire: the response body and sidecar match the artefacts
        // the one-shot CLI wrote, byte for byte.
        let resp = daemon.raw_request(&figure8);
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.body.as_deref(), Some(cli_body.as_str()));
        assert_eq!(resp.meta.as_deref(), Some(cli_meta.as_str()));

        // 4 concurrent clients, same answer each.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        paper(&[
                            "client",
                            "--socket",
                            daemon.socket_arg(),
                            "figure8",
                            "--loops",
                            "2",
                            "--buses",
                            "1",
                        ])
                    })
                })
                .collect();
            for handle in handles {
                let out = handle.join().expect("client thread");
                assert!(
                    out.status.success(),
                    "concurrent client: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                assert_eq!(
                    out.stdout, oneshot.stdout,
                    "concurrent client stdout == one-shot CLI stdout"
                );
            }
        });

        daemon.shutdown();
        bodies.push(cli_body);
    }
    assert_eq!(
        bodies[0], bodies[1],
        "--jobs 1 and --jobs 4 bodies are byte-identical"
    );
}

/// The warm-path contract: a daemon profiles each configuration at most
/// once per process, so a repeated request re-measures nothing and only
/// the cache hit counters move.
#[test]
fn warm_daemon_requests_do_no_new_measurements() {
    let figure9 = Request::Figure9(RunParams {
        loops: 2,
        buses: BusSel::One,
        seed: 0,
        store: StoreConfig::none(),
        profile: false,
    });
    let daemon = Daemon::start("warm", "2");
    let cold = daemon.raw_request(&figure9);
    assert!(cold.ok, "{:?}", cold.error);
    assert!(cold.cache.measure_misses > 0, "cold run measures");
    let warm = daemon.raw_request(&figure9);
    assert!(warm.ok, "{:?}", warm.error);
    assert_eq!(
        warm.cache.measure_misses, cold.cache.measure_misses,
        "warm run does no new measurements"
    );
    assert!(
        warm.cache.measure_hits > cold.cache.measure_hits,
        "warm run is served from the cache"
    );
    assert_eq!(warm.body, cold.body, "warm body is byte-identical");
    assert_eq!(warm.text, cold.text, "warm text is byte-identical");
    daemon.shutdown();
}

/// `paper loadgen` drives a live daemon and reports a latency/throughput
/// summary plus a JSON artefact for the perf gate.
#[test]
fn loadgen_reports_percentiles_against_a_live_daemon() {
    let daemon = Daemon::start("loadgen", "2");
    // No request tail: loadgen defaults to the cheap `ping` request.
    let out = paper(&[
        "loadgen",
        "--socket",
        daemon.socket_arg(),
        "--clients",
        "2",
        "--requests",
        "5",
    ]);
    assert!(
        out.status.success(),
        "loadgen: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 clients x 5 x ping"), "{stdout}");
    assert!(stdout.contains("p50"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");
    assert!(stdout.contains("req/s"), "{stdout}");
    let json = std::fs::read_to_string(results_dir().join("loadgen.json")).expect("loadgen.json");
    for key in [
        "\"serve_requests_per_second\"",
        "\"p50_ms\"",
        "\"p99_ms\"",
        "\"total_requests\": 10",
    ] {
        assert!(json.contains(key), "loadgen.json has {key}: {json}");
    }
    daemon.shutdown();
}

/// Flag validation for the service subcommands mirrors the CLI's strict
/// style: wrong combinations fail fast with usage on stderr.
#[test]
fn service_bad_args_exit_nonzero() {
    let cases: &[&[&str]] = &[
        &["serve"],                                       // missing --socket
        &["client", "figure6"],                           // missing --socket
        &["loadgen", "ping"],                             // missing --socket
        &["serve", "--socket", "/tmp/x.sock", "figure6"], // no experiment with serve
        &["figure6", "--socket", "/tmp/x.sock"],          // socket is service-only
        &["figure6", "--results", "/tmp/r"],              // results is serve-only
        &[
            "client",
            "--socket",
            "/tmp/x.sock",
            "--results",
            "/tmp/r",
            "ping",
        ],
        &["figure6", "--clients", "2"], // loadgen-only
        &[
            "client",
            "--socket",
            "/tmp/x.sock",
            "--requests",
            "2",
            "ping",
        ],
        &[
            "loadgen",
            "--socket",
            "/tmp/x.sock",
            "--clients",
            "0",
            "ping",
        ],
        &[
            "loadgen",
            "--socket",
            "/tmp/x.sock",
            "--requests",
            "0",
            "ping",
        ],
        &["client", "--socket", "/tmp/x.sock", "all"], // no fan-out via client
        &["client", "--socket", "/tmp/x.sock", "corpus", "dump"], // dump is local-only
        &["loadgen", "--socket", "/tmp/x.sock", "shutdown"], // no control reqs in loadgen
        &["client", "--socket", "/tmp/x.sock", "ping", "extra"], // trailing positional
    ];
    for args in cases {
        let out = paper(args);
        assert!(!out.status.success(), "paper {args:?} must fail");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(text.contains("error:"), "stderr explains {args:?}: {text}");
        assert!(text.contains("usage: paper"), "usage shown for {args:?}");
    }
}

/// A client pointed at a dead socket reports a clean error, not a hang.
#[test]
fn client_fails_cleanly_when_no_daemon_is_listening() {
    let socket = std::env::temp_dir().join(format!("paper-dead-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let out = paper(&["client", "--socket", socket.to_str().unwrap(), "ping"]);
    assert!(!out.status.success(), "dead socket must fail");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("error:"), "stderr explains: {text}");
}
