//! Observability end to end through the real binary.
//!
//! Three contracts:
//!
//! * **Tracing is free-of-charge for results**: running the committed
//!   golden experiments with `--trace` must leave every artefact
//!   byte-identical to the fixtures under `tests/golden/` at the
//!   workspace root, while producing a well-formed newline-JSON trace
//!   (every line parses, `ev` is `b`/`e`, `seq` is exactly the file
//!   order starting at 1, begin/end events balance per span id).
//! * **One-shot exposition is deterministic**: `paper metrics` renders
//!   the registry *before* its own latency is recorded, so its stdout
//!   is byte-golden (`tests/golden/metrics_oneshot.txt` in this crate).
//! * **The daemon is scrapeable**: after a loadgen burst the scrape
//!   pins every counter exactly (10 pings → 10 in every `_total` and
//!   `_count`) and matches a golden in which only the timing-dependent
//!   lines (`_bucket`/`_sum`/`_p50`/`_p99` values and the in-flight
//!   gauge) are normalised to `~`.
//!
//! To regenerate `metrics_daemon_ping.txt` after an intentional metric
//! change: run the daemon flow below by hand, pipe the scrape through
//! the same normalisation, and say so in the commit message (on a
//! mismatch the test writes the normalised scrape next to the golden
//! with a `.actual` suffix).

use std::io::{BufRead, BufReader};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn paper(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paper"))
        .args(args)
        .output()
        .expect("run paper binary")
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results")
}

/// A fixture under the workspace-root `tests/golden/` (the same files
/// CI's search-smoke job diffs binary artefacts against).
fn repo_golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn bench_golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// A `paper serve` child that is killed on drop, so a failing assertion
/// never leaks a daemon holding the socket.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(name: &str, jobs: &str) -> Self {
        let socket = std::env::temp_dir().join(format!("paper-{name}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_paper"))
            .args([
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--jobs",
                jobs,
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn paper serve");
        let daemon = Self { child, socket };
        let deadline = Instant::now() + Duration::from_secs(30);
        while UnixStream::connect(&daemon.socket).is_err() {
            assert!(
                Instant::now() < deadline,
                "daemon never bound {:?}",
                daemon.socket
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn socket_arg(&self) -> &str {
        self.socket.to_str().unwrap()
    }

    fn shutdown(mut self) {
        let out = paper(&["client", "--socket", self.socket_arg(), "shutdown"]);
        assert!(
            out.status.success(),
            "shutdown client: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exits 0 on graceful shutdown");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Checks that a trace file is well-formed newline-JSON and contains a
/// balanced `engine.run` span carrying the expected `kind` attribute.
fn validate_trace(path: &Path, expect_kind: &str) {
    let file =
        std::fs::File::open(path).unwrap_or_else(|e| panic!("open trace {}: {e}", path.display()));
    let mut next_seq = 1u64;
    let mut open: Vec<u64> = Vec::new();
    let mut saw_engine_run = false;
    for line in BufReader::new(file).lines() {
        let line = line.expect("read trace line");
        let v: serde_json::Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("trace line parses: {e}: {line}"));
        let ev = v
            .get("ev")
            .and_then(|x| x.as_str())
            .unwrap_or_else(|| panic!("event has ev: {line}"));
        let seq = v
            .get("seq")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or_else(|| panic!("event has seq: {line}"));
        let id = v
            .get("id")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or_else(|| panic!("event has id: {line}"));
        assert!(
            v.get("t_ns").and_then(serde_json::Value::as_u64).is_some(),
            "event has t_ns: {line}"
        );
        // seq is assigned under the writer lock, so it IS the file
        // order: exactly sequential from 1, no gaps, no reordering.
        assert_eq!(seq, next_seq, "seq matches file order: {line}");
        next_seq += 1;
        match ev {
            "b" => {
                let name = v
                    .get("name")
                    .and_then(|x| x.as_str())
                    .unwrap_or_else(|| panic!("begin has name: {line}"));
                if name == "engine.run"
                    && v.get("kind").and_then(|x| x.as_str()) == Some(expect_kind)
                {
                    saw_engine_run = true;
                }
                open.push(id);
            }
            "e" => {
                let begun = open
                    .iter()
                    .position(|&o| o == id)
                    .unwrap_or_else(|| panic!("end event closes a span that was begun: {line}"));
                open.swap_remove(begun);
            }
            other => panic!("unknown event type {other:?}: {line}"),
        }
    }
    assert!(next_seq > 1, "trace {} is not empty", path.display());
    assert!(open.is_empty(), "every span begun is ended: {open:?}");
    assert!(
        saw_engine_run,
        "trace has an engine.run span with kind={expect_kind}"
    );
}

/// Blanks the timing-dependent values in an exposition: histogram
/// `_bucket`/`_sum`/`_p50`/`_p99` samples (nanosecond-derived) and the
/// `serve_connections_in_flight` gauge (races with loadgen connections
/// draining). Counters and `_count` lines stay pinned exactly.
fn normalize(exposition: &str) -> String {
    let mut out = String::with_capacity(exposition.len());
    for line in exposition.lines() {
        let name = line.split(['{', ' ']).next().unwrap_or_default();
        let timing_dependent = name.ends_with("_bucket")
            || name.ends_with("_sum")
            || name.ends_with("_p50")
            || name.ends_with("_p99")
            || name == "serve_connections_in_flight";
        if timing_dependent && !line.starts_with('#') {
            let keep = line.rfind(' ').map_or(line.len(), |i| i + 1);
            out.push_str(&line[..keep]);
            out.push('~');
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Extracts the value of a single un-labelled sample line.
fn sample_value(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("exposition has a {name} sample"))
        .parse()
        .expect("sample value parses")
}

/// Running the committed golden experiments with `--trace` active must
/// not perturb a single output byte, and each run's trace must be
/// well-formed.
#[test]
fn traced_runs_stay_byte_identical_to_goldens() {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let cases: &[(&[&str], &str, &str, &str)] = &[
        (
            &["--experiment", "figure6", "--loops", "5", "--buses", "1"],
            "figure6.json",
            "figure6_loops5_buses1.json",
            "figure6",
        ),
        (
            &["table2", "--loops", "5"],
            "table2.json",
            "table2_loops5.json",
            "table2",
        ),
        (
            &[
                "search",
                "--strategy",
                "hillclimb",
                "--budget",
                "8",
                "--seed",
                "1",
                "--loops",
                "2",
                "--buses",
                "1",
            ],
            "search.json",
            "search_hillclimb_loops2_budget8_seed1.json",
            "search",
        ),
    ];
    for (args, artifact, fixture, kind) in cases {
        let trace = tmp.join(format!("paper-trace-{kind}-{pid}.jsonl"));
        let _ = std::fs::remove_file(&trace);
        let mut full: Vec<&str> = args.to_vec();
        full.extend(["--trace", trace.to_str().unwrap()]);
        let out = paper(&full);
        assert!(
            out.status.success(),
            "paper {kind} --trace: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let written = std::fs::read_to_string(results_dir().join(artifact))
            .unwrap_or_else(|e| panic!("read {artifact}: {e}"));
        assert_eq!(
            written,
            repo_golden(fixture),
            "{artifact} is byte-identical to {fixture} under --trace"
        );
        validate_trace(&trace, kind);
        let _ = std::fs::remove_file(&trace);
    }
}

/// `paper metrics` is deterministic: the registry is rendered before
/// the request's own latency lands, and with timing disabled no
/// histogram exists at all.
#[test]
fn oneshot_metrics_exposition_matches_golden() {
    let out = paper(&["metrics"]);
    assert!(
        out.status.success(),
        "paper metrics: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = std::fs::read_to_string(bench_golden_path("metrics_oneshot.txt"))
        .expect("read metrics_oneshot.txt");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "one-shot exposition is byte-golden"
    );
}

/// The scrape contract: a loadgen burst of 2 clients x 5 pings shows up
/// in the daemon's exposition as exactly 10 in every per-kind counter
/// and histogram count, with nonzero latency quantiles.
#[test]
fn daemon_scrape_accounts_for_every_loadgen_request() {
    // --jobs 1 keeps the serial execution path, so no machine-dependent
    // per-worker series appear in the exposition.
    let daemon = Daemon::start("obs-scrape", "1");
    let out = paper(&[
        "loadgen",
        "--socket",
        daemon.socket_arg(),
        "--clients",
        "2",
        "--requests",
        "5",
    ]);
    assert!(
        out.status.success(),
        "loadgen: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let scrape = paper(&["client", "--socket", daemon.socket_arg(), "metrics"]);
    assert!(
        scrape.status.success(),
        "metrics scrape: {}",
        String::from_utf8_lossy(&scrape.stderr)
    );
    let exposition = String::from_utf8_lossy(&scrape.stdout);

    for pinned in [
        "engine_requests_total{kind=\"ping\"} 10",
        "engine_requests_total{kind=\"metrics\"} 1",
        "engine_request_nanos_count{kind=\"ping\"} 10",
        "serve_requests_total{kind=\"ping\"} 10",
        "serve_requests_total{kind=\"metrics\"} 1",
        "serve_request_nanos_count{kind=\"ping\"} 10",
    ] {
        assert!(
            exposition.lines().any(|l| l == pinned),
            "exposition pins {pinned:?}:\n{exposition}"
        );
    }
    // The scrape's own connection is live while the exposition renders.
    assert!(
        sample_value(&exposition, "serve_connections_in_flight") >= 1.0,
        "the scraping connection is counted in flight"
    );
    for quantile in ["_p50{kind=\"ping\"}", "_p99{kind=\"ping\"}"] {
        for family in ["engine_request_nanos", "serve_request_nanos"] {
            let value = sample_value(&exposition, &format!("{family}{quantile}"));
            assert!(value > 0.0, "{family}{quantile} is nonzero");
        }
    }

    let golden_path = bench_golden_path("metrics_daemon_ping.txt");
    let golden = std::fs::read_to_string(&golden_path).expect("read metrics_daemon_ping.txt");
    let normalized = normalize(&exposition);
    if normalized != golden {
        let actual = golden_path.with_extension("txt.actual");
        std::fs::write(&actual, &normalized).expect("write .actual");
        panic!(
            "normalised scrape drifted from the golden; normalised output written to {}",
            actual.display()
        );
    }
    daemon.shutdown();
}
