//! The persistent measurement store through the real `paper` binary:
//! two separate processes sharing one `--store` directory must agree
//! byte for byte (the second doing no new scheduling), concurrent
//! writer processes must never corrupt the store, and the `store
//! stats` / `store compact` admin subcommands must work end to end.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use vliw_api::{BusSel, Request, Response, RunParams, SearchParams, StoreConfig};

fn paper(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paper"))
        .args(args)
        .output()
        .expect("run paper binary")
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results")
}

/// A fresh per-test store directory (tests in one binary run in
/// parallel, so the name carries the test tag and the pid).
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paper-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Extracts the stable part of `store stats` output — the record
/// counts. Log-file count and byte size legitimately grow as more
/// writer processes touch the store, the record counts must not.
fn record_counts(stats_stdout: &str) -> String {
    let line = stats_stdout
        .lines()
        .find(|l| l.contains("measurements + "))
        .unwrap_or_else(|| panic!("no record-count line in store stats output:\n{stats_stdout}"));
    line.split(" in ").next().expect("counts prefix").to_owned()
}

fn stats(dir: &std::path::Path) -> String {
    let out = paper(&["store", "stats", "--store", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "store stats: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A `paper serve` child that is killed on drop, so a failing assertion
/// never leaks a daemon holding the socket.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(name: &str, extra: &[&str]) -> Self {
        let socket = std::env::temp_dir().join(format!("paper-{name}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_paper"))
            .args(["serve", "--socket", socket.to_str().unwrap(), "--jobs", "2"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn paper serve");
        let daemon = Self { child, socket };
        let deadline = Instant::now() + Duration::from_secs(30);
        while UnixStream::connect(&daemon.socket).is_err() {
            assert!(
                Instant::now() < deadline,
                "daemon never bound {:?}",
                daemon.socket
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn raw_request(&self, req: &Request) -> Response {
        let mut stream = UnixStream::connect(&self.socket).expect("connect");
        stream
            .write_all(req.to_json_string().as_bytes())
            .expect("send request");
        stream.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .expect("read reply");
        Response::from_json_str(reply.trim_end()).expect("parse reply")
    }

    fn shutdown(mut self) {
        let out = paper(&[
            "client",
            "--socket",
            self.socket.to_str().unwrap(),
            "shutdown",
        ]);
        assert!(
            out.status.success(),
            "shutdown client: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exits 0 on graceful shutdown");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// The tentpole acceptance criterion end to end: a second `paper search
/// --store DIR` **process** reuses every measurement from the first and
/// produces byte-identical artefacts; a daemon over the same store is
/// equally warm, observable through its cache stats.
#[test]
fn second_search_process_reuses_the_store_byte_for_byte() {
    let dir = store_dir("search");
    let dir_arg = dir.to_str().unwrap();
    let search = [
        "search", "--budget", "30", "--loops", "2", "--buses", "1", "--store", dir_arg,
    ];

    let cold = paper(&search);
    assert!(
        cold.status.success(),
        "cold search: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_body =
        std::fs::read_to_string(results_dir().join("search.json")).expect("search.json");
    let cold_meta =
        std::fs::read_to_string(results_dir().join("search.meta.json")).expect("sidecar");
    let cold_counts = record_counts(&stats(&dir));

    // A brand-new process over the same store: identical bytes on
    // stdout and in both artefacts, and the store gains no records —
    // every measurement and reference profile came off the disk.
    let warm = paper(&search);
    assert!(
        warm.status.success(),
        "warm search: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(warm.stdout, cold.stdout, "stdout is byte-identical");
    let warm_body =
        std::fs::read_to_string(results_dir().join("search.json")).expect("search.json");
    let warm_meta =
        std::fs::read_to_string(results_dir().join("search.meta.json")).expect("sidecar");
    assert_eq!(warm_body, cold_body, "search.json is byte-identical");
    assert_eq!(warm_meta, cold_meta, "search.meta.json is byte-identical");
    assert_eq!(
        record_counts(&stats(&dir)),
        cold_counts,
        "the warm run persisted nothing new"
    );

    // The same warm-run guarantee through the daemon transport, where
    // CacheStats make the zero-measurement claim directly observable.
    let daemon = Daemon::start("store-warm", &["--store", dir_arg]);
    let resp = daemon.raw_request(&Request::Search {
        params: RunParams {
            loops: 2,
            buses: BusSel::One,
            seed: 0,
            store: StoreConfig::none(), // daemon default store applies
            profile: false,
        },
        search: SearchParams {
            budget: 30,
            ..SearchParams::default()
        },
    });
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(
        resp.cache.measure_misses, 0,
        "a fresh daemon over the warmed store re-schedules nothing: {:?}",
        resp.cache
    );
    assert!(resp.cache.store_hits > 0, "it was served from the store");
    assert_eq!(
        resp.body.as_deref(),
        Some(cold_body.as_str()),
        "daemon body matches the one-shot artefact"
    );
    daemon.shutdown();

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Two concurrent writer processes sharing one store directory: each
/// appends to its own pid-named log, the merged read is deterministic
/// and uncorrupted, and compaction folds both logs into one.
#[test]
fn concurrent_writer_processes_never_corrupt_the_store() {
    let dir = store_dir("concurrent");
    let dir_arg = dir.to_str().unwrap().to_owned();

    // Different seeds produce different loop bodies, so the two
    // processes write disjoint record sets at the same time.
    let spawn = |seed: &str| {
        Command::new(env!("CARGO_BIN_EXE_paper"))
            .args([
                "figure6", "--loops", "2", "--buses", "1", "--seed", seed, "--store", &dir_arg,
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn paper figure6")
    };
    let mut writers = [spawn("0"), spawn("1")];
    for child in &mut writers {
        let status = child.wait().expect("wait for writer");
        assert!(status.success(), "concurrent writer failed");
    }

    // The merged view loads cleanly (no truncated or malformed lines)
    // and repeated reads agree — the merge is deterministic.
    let first = stats(&dir);
    assert!(
        first.contains("0 truncated line(s) skipped"),
        "no corruption after concurrent writers:\n{first}"
    );
    let counts = record_counts(&first);
    assert_eq!(
        record_counts(&stats(&dir)),
        counts,
        "repeated merged reads agree"
    );

    // Compaction folds the dead writers' logs into compact.jsonl
    // without losing a record.
    let compact = paper(&["store", "compact", "--store", &dir_arg]);
    assert!(
        compact.status.success(),
        "store compact: {}",
        String::from_utf8_lossy(&compact.stderr)
    );
    let compact_stdout = String::from_utf8_lossy(&compact.stdout);
    assert!(
        compact_stdout.contains("compact.jsonl"),
        "compact reports its output: {compact_stdout}"
    );
    assert!(dir.join("compact.jsonl").exists(), "compact.jsonl written");
    assert_eq!(
        record_counts(&stats(&dir)),
        counts,
        "compaction preserves every record"
    );

    // And both writers' work is actually reusable: a third process
    // re-running one seed warm adds nothing new.
    let warm = paper(&[
        "figure6", "--loops", "2", "--buses", "1", "--seed", "1", "--store", &dir_arg,
    ]);
    assert!(warm.status.success(), "warm figure6 rerun");
    assert_eq!(
        record_counts(&stats(&dir)),
        counts,
        "a warm rerun persists nothing new"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Strict flag validation for the store surface, mirroring the CLI's
/// errors-not-no-ops style.
#[test]
fn store_bad_args_exit_nonzero() {
    let cases: &[&[&str]] = &[
        &["store", "stats"],                                       // missing --store
        &["store", "compact"],                                     // missing --store
        &["store"],                                                // missing action
        &["store", "frobnicate", "--store", "/tmp/s"],             // unknown action
        &["store", "stats", "extra", "--store", "/tmp/s"],         // trailing positional
        &["table1", "--store", "/tmp/s"],                          // table1 measures nothing
        &["store", "stats", "--store", "/tmp/s", "--budget", "3"], // search-only flag
        &[
            "client",
            "--socket",
            "/tmp/x.sock",
            "ping",
            "--store",
            "/tmp/s",
        ], // ping takes no store
    ];
    for args in cases {
        let out = paper(args);
        assert!(!out.status.success(), "paper {args:?} must fail");
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(text.contains("error:"), "stderr explains {args:?}: {text}");
        assert!(text.contains("usage: paper"), "usage shown for {args:?}");
    }
}
