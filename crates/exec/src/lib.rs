//! Dependency-free batch execution: a scoped worker pool and a
//! memoisation cache.
//!
//! Design-space exploration evaluates thousands of *independent*
//! candidates (configurations × benchmarks × voltage grids). This crate
//! provides the two primitives the exploration layer scales with:
//!
//! * [`Executor`] — a scoped worker pool over [`std::thread`] with a
//!   bounded work queue. [`Executor::map`] fans a slice of inputs out
//!   across the pool and returns the results **in input order**, so a
//!   parallel run is bit-identical to a serial one whenever the mapped
//!   function is deterministic.
//! * [`MemoCache`] — a thread-safe memoisation table with hit/miss
//!   statistics, used to collapse repeated candidate evaluations (e.g.
//!   the ratio-1.0 points of the §3.3 selection grid, or identical
//!   configurations selected under different frequency menus).
//!
//! Both are deliberately free of external dependencies: everything is
//! built on `std::thread::scope`, `std::sync::mpsc` and `Mutex`, so the
//! crate compiles in offline environments and stays auditable. The pool
//! reports into [`vliw_obs`] (itself std-only): `exec_queue_depth`, and
//! per-worker `exec_tasks_total` / `exec_worker_busy_nanos_total` (the
//! busy clock only ticks when `vliw_obs::enable_timing` was called).
//!
//! # Example
//!
//! ```
//! use vliw_exec::Executor;
//!
//! let pool = Executor::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |_idx, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

/// How many queued jobs each worker "owns": the work queue is bounded at
/// `workers · QUEUE_DEPTH`, so the feeding thread applies backpressure
/// instead of materialising an unbounded index list.
const QUEUE_DEPTH: usize = 2;

/// A fixed-size worker pool executing independent jobs with deterministic,
/// input-ordered results.
///
/// The pool itself is cheap to construct (it only records the job count);
/// worker threads are scoped to each [`Executor::map`] call, so borrowed
/// (non-`'static`) inputs work and no threads outlive the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: NonZeroUsize,
}

impl Executor {
    /// How many times `available_parallelism` a requested worker count may
    /// exceed before it is considered absurd and clamped (with a floor so
    /// small machines still honour modest oversubscription for tests and
    /// I/O-bound workloads).
    const OVERSUBSCRIPTION_LIMIT: usize = 16;
    const CLAMP_FLOOR: usize = 128;

    /// A pool with `jobs` workers; `0` means "use the machine's available
    /// parallelism" (like `make -j`).
    ///
    /// Absurd requests — more than 16 × `available_parallelism` (and at
    /// least 128) workers — are clamped to the machine's available
    /// parallelism with a warning on stderr, instead of silently spawning
    /// thousands of threads.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        let Some(requested) = NonZeroUsize::new(jobs) else {
            return Self::auto();
        };
        let avail = Self::auto().jobs.get();
        let cap = (avail * Self::OVERSUBSCRIPTION_LIMIT).max(Self::CLAMP_FLOOR);
        if requested.get() > cap {
            // Once per process: a pipeline constructs many executors from
            // the same `--jobs` value and one warning is enough.
            static CLAMP_WARNING: std::sync::Once = std::sync::Once::new();
            CLAMP_WARNING.call_once(|| {
                eprintln!(
                    "warning: --jobs {requested} is absurd for this machine \
                     (available parallelism {avail}); clamping to {avail}"
                );
            });
            return Self::auto();
        }
        Executor { jobs: requested }
    }

    /// A single-worker pool: `map` degenerates to a plain serial loop on
    /// the calling thread (no threads are spawned).
    #[must_use]
    pub fn serial() -> Self {
        Executor {
            jobs: NonZeroUsize::MIN,
        }
    }

    /// A pool sized to the machine's available parallelism (1 if the
    /// platform cannot report it).
    #[must_use]
    pub fn auto() -> Self {
        Executor {
            jobs: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The number of workers `map` will use (before clamping to the input
    /// length).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs.get()
    }

    /// Whether `map` runs on the calling thread without spawning workers.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.jobs.get() == 1
    }

    /// Applies `f` to every item and returns the results in input order.
    ///
    /// Jobs are distributed over `min(jobs, items.len())` scoped workers
    /// through a bounded queue; each worker sends `(index, result)` pairs
    /// back and the results are reassembled by index, so the output is
    /// identical to `items.iter().enumerate().map(..).collect()` for any
    /// deterministic `f`, regardless of worker count or scheduling.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (the scope re-raises a worker's panic on
    /// the calling thread).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), |(), i, t| f(i, t))
    }

    /// [`Executor::map`] with **per-worker state**: every worker thread
    /// calls `init` exactly once and threads the resulting value through
    /// all jobs it executes.
    ///
    /// This is how the exploration layer gives each worker one long-lived
    /// `SchedWorkspace`: scheduling state is reused across every loop a
    /// worker processes, without any cross-thread sharing. Since `f` must
    /// produce results independent of the state's history, the output is
    /// identical to `map` for any worker count (the serial path uses one
    /// state for all items).
    ///
    /// # Panics
    ///
    /// Propagates panics from `init` and `f`.
    pub fn map_init<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let workers = self.jobs.get().min(items.len());
        if workers <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }

        // One gauge handle per process, interned on the first parallel
        // map; each map call clones the Arc (cheap) so the feeder and
        // workers update it without touching the registry again.
        static QUEUE_GAUGE: std::sync::OnceLock<std::sync::Arc<vliw_obs::Gauge>> =
            std::sync::OnceLock::new();
        let queue_depth = QUEUE_GAUGE.get_or_init(|| vliw_obs::gauge("exec_queue_depth"));

        let (job_tx, job_rx) = mpsc::sync_channel::<usize>(workers * QUEUE_DEPTH);
        // The receiver lives behind `Option` so the *last exiting worker*
        // can drop it (see `RxGuard`), which unblocks a feeder stuck in a
        // full-queue `send` when every worker has panicked — otherwise
        // that send would wait forever and the scope could never re-raise
        // the panic.
        let job_rx = Mutex::new(Some(job_rx));
        let (res_tx, res_rx) = mpsc::channel::<(usize, R)>();
        let live = AtomicU64::new(workers as u64);
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(items.len(), || None);

        /// Panic-safe worker-exit bookkeeping: decrements the live count
        /// and, on the last exit, disconnects the job channel.
        struct RxGuard<'a> {
            live: &'a AtomicU64,
            job_rx: &'a Mutex<Option<mpsc::Receiver<usize>>>,
        }
        impl Drop for RxGuard<'_> {
            fn drop(&mut self) {
                if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                    drop(
                        self.job_rx
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take(),
                    );
                }
            }
        }

        std::thread::scope(|scope| {
            for w in 0..workers {
                let res_tx = res_tx.clone();
                let job_rx = &job_rx;
                let live = &live;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let _guard = RxGuard { live, job_rx };
                    // Intern this worker's metrics once per map call;
                    // the per-task cost is then one atomic add each.
                    let worker_label = w.to_string();
                    let tasks = vliw_obs::counter_with("exec_tasks_total", "worker", &worker_label);
                    let busy = vliw_obs::counter_with(
                        "exec_worker_busy_nanos_total",
                        "worker",
                        &worker_label,
                    );
                    let mut state = init();
                    loop {
                        // Hold the receiver lock only while popping;
                        // ignore poisoning (a panicked sibling is
                        // propagated by the scope, not by us).
                        let idx = {
                            let guard = job_rx
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            match guard.as_ref() {
                                Some(rx) => rx.recv(),
                                None => break,
                            }
                        };
                        let Ok(idx) = idx else { break };
                        queue_depth.dec();
                        let start = vliw_obs::timer_start();
                        let result = f(&mut state, idx, &items[idx]);
                        if let Some(s) = start {
                            busy.add(vliw_obs::elapsed_nanos(s));
                        }
                        tasks.inc();
                        if res_tx.send((idx, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);

            // Feed the bounded queue (backpressure happens here), then
            // collect. Results never block: the result channel is
            // unbounded, so workers always make progress; and if every
            // worker dies, the last one disconnects the job channel, so
            // this send returns `Err` instead of blocking forever.
            for idx in 0..items.len() {
                // Inc before the send so the gauge never dips negative
                // (the worker's dec strictly follows a completed send).
                queue_depth.inc();
                if job_tx.send(idx).is_err() {
                    queue_depth.dec();
                    break; // every worker exited early (panic propagates below)
                }
            }
            drop(job_tx);
            while let Ok((idx, result)) = res_rx.recv() {
                results[idx] = Some(result);
            }
        });

        results
            .into_iter()
            .map(|r| r.expect("every index was delivered exactly once"))
            .collect()
    }

    /// [`Executor::map`] for fallible jobs: returns the first error in
    /// *input order* (matching what a serial `?`-loop would surface), or
    /// all results.
    ///
    /// Short-circuits like the serial loop: with one worker, evaluation
    /// stops at the first error; with several, an error at index `i`
    /// cancels all not-yet-started items *above* `i` (lower items still
    /// run, so the reported error is deterministically the lowest-indexed
    /// one regardless of worker count).
    ///
    /// # Example
    ///
    /// ```
    /// use vliw_exec::Executor;
    ///
    /// let pool = Executor::new(4);
    /// let halves = pool.try_map(&[2u32, 8, 10], |_idx, &x| {
    ///     if x % 2 == 0 { Ok(x / 2) } else { Err(format!("{x} is odd")) }
    /// });
    /// assert_eq!(halves, Ok(vec![1, 4, 5]));
    ///
    /// // The lowest-indexed error wins, whatever the worker count.
    /// let err = pool.try_map(&[2u32, 3, 5], |_idx, &x| {
    ///     if x % 2 == 0 { Ok(x / 2) } else { Err(format!("{x} is odd")) }
    /// });
    /// assert_eq!(err, Err("3 is odd".to_owned()));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing item.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.try_map_init(items, || (), |(), i, t| f(i, t))
    }

    /// [`Executor::try_map`] with per-worker state (see
    /// [`Executor::map_init`]): fallible jobs, first error in input order,
    /// one `init` per worker thread.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing item.
    pub fn try_map_init<T, R, E, S, I, F>(&self, items: &[T], init: I, f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
    {
        if self.jobs.get().min(items.len()) <= 1 {
            let mut state = init();
            let mut out = Vec::with_capacity(items.len());
            for (i, t) in items.iter().enumerate() {
                out.push(f(&mut state, i, t)?);
            }
            return Ok(out);
        }
        // Lowest failing index seen so far; items above it are skipped.
        // Every index below the *final* first error is still evaluated
        // (a skip implies an even lower error), so the scan below returns
        // exactly the error the serial loop would.
        let watermark = AtomicU64::new(u64::MAX);
        let evaluated = self.map_init(items, init, |state, i, t| {
            if (i as u64) > watermark.load(Ordering::Acquire) {
                return None;
            }
            let r = f(state, i, t);
            if r.is_err() {
                watermark.fetch_min(i as u64, Ordering::AcqRel);
            }
            Some(r)
        });
        let mut out = Vec::with_capacity(items.len());
        for r in evaluated {
            match r {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
                None => unreachable!("an item below the first error was skipped"),
            }
        }
        Ok(out)
    }
}

impl Default for Executor {
    /// Defaults to [`Executor::auto`].
    fn default() -> Self {
        Self::auto()
    }
}

/// A thread-safe memoisation table: the first evaluation of a key computes
/// and stores the value, later evaluations clone the stored value.
///
/// The cache never changes *what* is computed — only how often — so
/// callers memoising a deterministic function get bit-identical results
/// with or without it (and under any thread interleaving: concurrent
/// computations of the same key keep the first stored value).
///
/// # Example
///
/// ```
/// use vliw_exec::MemoCache;
///
/// let cache: MemoCache<u32, u64> = MemoCache::new();
/// let square = |x: u32| cache.get_or_compute(x, || u64::from(x) * u64::from(x));
/// assert_eq!(square(7), 49);
/// assert_eq!(square(7), 49); // served from the cache
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// ```
pub struct MemoCache<K, V> {
    map: Mutex<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        MemoCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, computing and storing it on the
    /// first request. `compute` runs *outside* the lock, so a slow
    /// computation never blocks unrelated lookups; if two threads race on
    /// the same key, both compute but the first store wins for everyone.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        self.lock().entry(key).or_insert(value).clone()
    }

    /// Number of distinct keys stored.
    ///
    /// # Panics
    ///
    /// Never panics (lock poisoning is absorbed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<K, V>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<K: Eq + Hash, V: Clone> Default for MemoCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> fmt::Debug for MemoCache<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoCache")
            .field(
                "len",
                &self
                    .map
                    .lock()
                    .map(|m| m.len())
                    .unwrap_or_else(|e| e.into_inner().len()),
            )
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let pool = Executor::new(jobs);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let items: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37).collect();
        let f = |_: usize, x: &f64| (x.sin() * 1e9).to_bits();
        let serial = Executor::serial().map(&items, f);
        let parallel = Executor::new(7).map(&items, f);
        assert_eq!(serial, parallel, "bit-identical across worker counts");
    }

    #[test]
    fn map_handles_empty_and_singleton_inputs() {
        let pool = Executor::new(8);
        assert_eq!(pool.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn workers_are_clamped_to_input_length() {
        // 64 workers for 4 items must not deadlock or duplicate work.
        let count = AtomicUsize::new(0);
        let out = Executor::new(64).map(&[1u32, 2, 3, 4], |_, &x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn try_map_returns_first_error_in_input_order() {
        let items: Vec<u32> = (0..50).collect();
        let result = Executor::new(4).try_map(&items, |_, &x| {
            if x % 7 == 3 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        // Serial semantics: the lowest failing index (3) wins.
        assert_eq!(result, Err("bad 3".to_owned()));
    }

    #[test]
    fn try_map_collects_all_on_success() {
        let items: Vec<u32> = (0..20).collect();
        let result: Result<Vec<u32>, String> = Executor::new(3).try_map(&items, |_, &x| Ok(x * 2));
        assert_eq!(result.unwrap(), (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            Executor::new(4).map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                assert!(x != 5, "boom on 5");
                x
            })
        });
        assert!(caught.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn worker_panic_with_many_items_does_not_deadlock() {
        // Regression: when every worker panics while far more items than
        // the bounded queue holds remain, the feeder must not block
        // forever in `send` — the last dying worker disconnects the job
        // channel.
        let items: Vec<u32> = (0..500).collect();
        let caught = std::panic::catch_unwind(|| {
            Executor::new(2).map(&items, |_, &x| {
                assert!(x >= 1000, "every item panics");
                x
            })
        });
        assert!(caught.is_err(), "panic must propagate, not hang");
    }

    #[test]
    fn try_map_short_circuits_serially_and_skips_above_failures() {
        // Serial: evaluation stops at the first error, like a `?` loop.
        let items: Vec<u32> = (0..50).collect();
        let evaluated = AtomicUsize::new(0);
        let r = Executor::serial().try_map(&items, |_, &x| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(r, Err("bad 3".to_owned()));
        assert_eq!(
            evaluated.load(Ordering::Relaxed),
            4,
            "serial try_map must stop at the first error"
        );

        // Parallel: items above an already-seen failure are cancelled, so
        // an early error avoids evaluating the whole input.
        let items: Vec<u32> = (0..2000).collect();
        let evaluated = AtomicUsize::new(0);
        let r = Executor::new(4).try_map(&items, |_, &x| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                Err("bad 0".to_owned())
            } else {
                Ok(x)
            }
        });
        assert_eq!(r, Err("bad 0".to_owned()));
        assert!(
            evaluated.load(Ordering::Relaxed) < items.len(),
            "an early error must cancel most remaining work ({} evaluated)",
            evaluated.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn map_init_threads_state_through_workers() {
        let items: Vec<u64> = (0..200).collect();
        let inits = AtomicUsize::new(0);
        let out = Executor::new(4).map_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new() // per-worker scratch, grown then reused
            },
            |scratch, _, &x| {
                scratch.clear();
                scratch.extend(0..=x);
                scratch.iter().sum::<u64>()
            },
        );
        let expect: Vec<u64> = items.iter().map(|&x| x * (x + 1) / 2).collect();
        assert_eq!(out, expect);
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&n), "one init per worker, got {n}");
    }

    #[test]
    fn try_map_init_matches_serial_semantics() {
        let items: Vec<u32> = (0..50).collect();
        let r = Executor::new(4).try_map_init(
            &items,
            || 0u32,
            |_, _, &x| {
                if x % 7 == 3 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(r, Err("bad 3".to_owned()));
    }

    #[test]
    fn absurd_job_counts_are_clamped() {
        let avail = Executor::auto().jobs();
        let absurd = (avail * Executor::OVERSUBSCRIPTION_LIMIT).max(Executor::CLAMP_FLOOR) + 1;
        assert_eq!(
            Executor::new(absurd).jobs(),
            avail,
            "absurd request clamps to available parallelism"
        );
        // Reasonable oversubscription is honoured verbatim.
        assert_eq!(Executor::new(64).jobs(), 64);
    }

    #[test]
    fn executor_constructors() {
        assert!(Executor::serial().is_serial());
        assert_eq!(Executor::serial().jobs(), 1);
        assert_eq!(Executor::new(5).jobs(), 5);
        assert!(Executor::new(0).jobs() >= 1, "0 means auto");
        assert!(Executor::auto().jobs() >= 1);
        assert!(Executor::default().jobs() >= 1);
    }

    #[test]
    fn memo_cache_computes_once_per_key() {
        let cache: MemoCache<u32, u64> = MemoCache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            for k in 0..4u32 {
                let v = cache.get_or_compute(k, || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    u64::from(k) * 10
                });
                assert_eq!(v, u64::from(k) * 10);
            }
        }
        assert_eq!(calls.load(Ordering::Relaxed), 4, "one compute per key");
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 8);
        assert!(!cache.is_empty());
    }

    #[test]
    fn memo_cache_is_safe_under_parallel_hammering() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        let items: Vec<u32> = (0..200).collect();
        let out = Executor::new(8).map(&items, |_, &x| cache.get_or_compute(x % 5, || x % 5));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u32) % 5);
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }

    #[test]
    fn memo_cache_debug_does_not_require_debug_contents() {
        struct Opaque;
        impl Clone for Opaque {
            fn clone(&self) -> Self {
                Opaque
            }
        }
        let cache: MemoCache<u8, Opaque> = MemoCache::new();
        let _ = cache.get_or_compute(1, || Opaque);
        let s = format!("{cache:?}");
        assert!(s.contains("len"), "{s}");
    }
}
