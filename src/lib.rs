//! `heterovliw` — umbrella crate of the CGO 2007 *Heterogeneous Clustered
//! VLIW Microarchitectures* reproduction.
//!
//! Everything lives in [`heterovliw_core`] and the layer crates it
//! re-exports; this crate simply flattens them for convenient `use`:
//!
//! ```
//! use heterovliw::{ir::DdgBuilder, machine::MachineDesign};
//! let design = MachineDesign::paper_machine(1);
//! assert_eq!(design.num_clusters, 4);
//! let _ = DdgBuilder::new("loop");
//! ```

pub use heterovliw_core::{api, explore, ir, machine, power, sched, sim, workloads, Study};
