#!/usr/bin/env bash
# Benchmark-regression gate for the exploration pipeline.
#
# Runs a representative experiment (`paper --experiment figure6` on a
# reduced suite) under /usr/bin/time, records wall-time plus the mean
# normalised ED² metrics into BENCH_pr.json, and fails when either drifts
# from the committed BENCH_baseline.json beyond tolerance:
#
#   * metrics: relative drift > BENCH_METRIC_TOL   (default 1 %)
#     — the pipeline is deterministic, so any metric drift means the
#       *results* changed, not just the speed;
#   * wall-time: > BENCH_TIME_RATIO × baseline      (default 3×)
#     — generous because CI runners vary, but a pipeline that suddenly
#       takes 3× longer is a real regression;
#   * scheduler throughput: loops_per_second < baseline / BENCH_TIME_RATIO
#     — a dedicated `schedbench` run times the §4 modulo-scheduling
#       pipeline itself (partition + IMS + IT retry over the whole suite),
#       so scheduler-core regressions are caught even when the figure6
#       sweep hides them behind memoisation.
#   * instrumentation overhead: a second `schedbench` run with the
#     observability layer live (`--metrics`) must keep loops_per_second
#     within OBS_OVERHEAD_TOL (default 5 %) of the plain run — the
#     "near-zero-cost metrics" claim, checked relatively within one
#     runner so machine speed cancels out.
#   * search throughput: search_evals_per_second < baseline / BENCH_TIME_RATIO
#     — a `searchbench` run times candidate evaluations through the
#       memo-cached suite (estimate → voltage descent → measure), gating
#       the design-space search loop like the scheduler.
#   * service throughput: serve_requests_per_second < baseline / BENCH_TIME_RATIO
#     — a `paper serve` daemon is started on a temp socket, warmed with
#       one request, then driven by `paper loadgen` (concurrent clients,
#       warm figure6 requests), gating the request/response service core
#       (wire protocol + engine cache + connection handling).
#   * warm-store throughput: warm_search_evals_per_second < baseline / BENCH_TIME_RATIO
#     — a seeded `search --racing --store` run populates a temp
#       measurement store, then a second *process* replays it; every
#       evaluation must come off the disk store, so this gates the store
#       read path (log load + content-addressed lookup) end to end.
#   * effective throughput: effective_evals_per_second < 10 × search_evals_per_second
#     — candidates *disposed of* per second (full evaluations plus
#       racing screens) by the warm racing replay on the extended
#       space. The scaled-search machinery (racing + warm store) must
#       hold at least a 10× advantage over the cold full-measurement
#       rate, or the whole subsystem has stopped paying for itself.
#
# Every *timing* measurement is taken best-of-N (default 3): wall times
# keep the minimum, throughputs the maximum. The pipeline's metrics are
# deterministic — repeats produce byte-identical results — so repetition
# only de-noises the clock, never the numbers, and the best run is the
# one least perturbed by the runner.
#
# Usage:
#   scripts/perf_gate.sh                  # measure + compare
#   scripts/perf_gate.sh --write-baseline # measure + (re)write the baseline
#
# Environment:
#   PAPER_BIN         paper binary (default target/release/paper)
#   BENCH_LOOPS       loops per benchmark (default 16)
#   BENCH_REPS        repetitions per timing measurement (default 3)
#   BENCH_OUT         output json (default BENCH_pr.json)
#   BENCH_BASELINE    baseline json (default BENCH_baseline.json)
#   BENCH_METRIC_TOL  relative metric tolerance (default 0.01)
#   BENCH_TIME_RATIO  wall-time regression multiplier (default 3.0)
#   OBS_OVERHEAD_TOL  allowed relative schedbench slowdown under
#                     --metrics (default 0.05)
#   OBS_REPS          paired repetitions for the overhead check
#                     (default 5)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${PAPER_BIN:-$ROOT/target/release/paper}"
OUT="${BENCH_OUT:-$ROOT/BENCH_pr.json}"
BASELINE="${BENCH_BASELINE:-$ROOT/BENCH_baseline.json}"
LOOPS="${BENCH_LOOPS:-16}"
REPS="${BENCH_REPS:-3}"
METRIC_TOL="${BENCH_METRIC_TOL:-0.01}"
TIME_RATIO="${BENCH_TIME_RATIO:-3.0}"

if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found — build it with: cargo build --release" >&2
    exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== perf gate: figure6 --loops $LOOPS --buses 1 (best of $REPS) =="
wall=""
for rep in $(seq "$REPS"); do
    if [[ -x /usr/bin/time ]]; then
        /usr/bin/time -p "$BIN" --experiment figure6 --loops "$LOOPS" --buses 1 --jobs 0 \
            >"$tmp/stdout" 2>"$tmp/stderr"
        rep_wall="$(awk '/^real/ {print $2}' "$tmp/stderr")"
    else
        # Portable fallback for environments without GNU time; the binary's
        # own stderr [time] line still gives per-experiment wall-time.
        start_ns="$(date +%s%N)"
        "$BIN" --experiment figure6 --loops "$LOOPS" --buses 1 --jobs 0 \
            >"$tmp/stdout" 2>"$tmp/stderr"
        end_ns="$(date +%s%N)"
        rep_wall="$(awk -v a="$start_ns" -v b="$end_ns" 'BEGIN {printf "%.2f", (b - a) / 1e9}')"
    fi
    grep -E '^\[time\]|^real' "$tmp/stderr" || true
    if [[ -z "$wall" ]] || awk -v a="$rep_wall" -v b="$wall" 'BEGIN {exit !(a < b)}'; then
        wall="$rep_wall"
    fi
done
echo "best wall: $wall s"

# Repeats a throughput experiment, keeping the JSON record of the run
# with the highest value of the given key: $1 = experiment args...,
# last two args = JSON key and destination for the best record.
best_of() {
    local key="${@: -2:1}" dest="${@: -1}"
    local args=("${@:1:$#-2}")
    local best=""
    for rep in $(seq "$REPS"); do
        "$BIN" "${args[@]}" >"$tmp/bench-stdout" 2>"$tmp/bench-stderr"
        grep -E '^\[time\]|loops/s|evals/s' "$tmp/bench-stdout" "$tmp/bench-stderr" || true
        local produced="$ROOT/target/paper-results/${args[1]}.json"
        local value
        value="$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])" \
            "$produced" "$key")"
        if [[ -z "$best" ]] || awk -v a="$value" -v b="$best" 'BEGIN {exit !(a > b)}'; then
            best="$value"
            cp "$produced" "$dest"
        fi
    done
    echo "best $key: $best"
}

echo "== perf gate: schedbench --loops $LOOPS (best of $REPS) =="
best_of --experiment schedbench --loops "$LOOPS" --jobs 1 \
    loops_per_second "$tmp/best-schedbench.json"

echo "== perf gate: schedbench --metrics instrumentation overhead (paired best of ${OBS_REPS:-5}) =="
# Relative check within one runner, so machine speed cancels out. The
# plain side is re-measured here, *interleaved* with the instrumented
# runs, rather than reusing the stage above: pairing in time keeps
# thermal / background-load drift from masquerading as overhead.
OBS_TOL="${OBS_OVERHEAD_TOL:-0.05}"
OBS_REPS="${OBS_REPS:-5}"
plain_lps=""
obs_lps=""
lps_of_run() {
    "$BIN" --experiment schedbench --loops "$LOOPS" --jobs 1 "$@" >/dev/null 2>&1
    python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['loops_per_second'])" \
        "$ROOT/target/paper-results/schedbench.json"
}
for rep in $(seq "$OBS_REPS"); do
    rep_plain="$(lps_of_run)"
    rep_obs="$(lps_of_run --metrics)"
    echo "  rep $rep: plain $rep_plain loops/s, --metrics $rep_obs loops/s"
    if [[ -z "$plain_lps" ]] || awk -v a="$rep_plain" -v b="$plain_lps" 'BEGIN {exit !(a > b)}'; then
        plain_lps="$rep_plain"
    fi
    if [[ -z "$obs_lps" ]] || awk -v a="$rep_obs" -v b="$obs_lps" 'BEGIN {exit !(a > b)}'; then
        obs_lps="$rep_obs"
    fi
done
if awk -v m="$obs_lps" -v p="$plain_lps" -v t="$OBS_TOL" 'BEGIN {exit !(m < p * (1 - t))}'; then
    echo "error: schedbench with --metrics ran at $obs_lps loops/s," \
         "more than $(awk -v t="$OBS_TOL" 'BEGIN {printf "%.0f%%", t * 100}')" \
         "below the plain run's $plain_lps loops/s — the observability" \
         "layer is no longer near-zero-cost" >&2
    exit 1
fi
echo "instrumentation overhead ok: $obs_lps loops/s with --metrics vs $plain_lps plain"

echo "== perf gate: searchbench --loops $LOOPS (best of $REPS) =="
best_of --experiment searchbench --loops "$LOOPS" --jobs 1 \
    search_evals_per_second "$tmp/best-searchbench.json"

echo "== perf gate: warm racing search over a persistent --store (best of $REPS, second process) =="
STORE="$tmp/measure-store"
SEARCH_BUDGET=64
"$BIN" search --space extended --budget "$SEARCH_BUDGET" --racing --loops "$LOOPS" --buses 1 \
    --jobs 0 --store "$STORE" >"$tmp/coldstore-stdout" 2>"$tmp/coldstore-stderr"
warm_search_s=""
for rep in $(seq "$REPS"); do
    start_ns="$(date +%s%N)"
    "$BIN" search --space extended --budget "$SEARCH_BUDGET" --racing --loops "$LOOPS" --buses 1 \
        --jobs 0 --store "$STORE" >"$tmp/warmstore-stdout" 2>"$tmp/warmstore-stderr"
    end_ns="$(date +%s%N)"
    rep_s="$(awk -v a="$start_ns" -v b="$end_ns" 'BEGIN {printf "%.4f", (b - a) / 1e9}')"
    if ! cmp -s "$tmp/coldstore-stdout" "$tmp/warmstore-stdout"; then
        echo "error: warm --store search is not byte-identical to the cold run" >&2
        exit 1
    fi
    if [[ -z "$warm_search_s" ]] || \
        awk -v a="$rep_s" -v b="$warm_search_s" 'BEGIN {exit !(a < b)}'; then
        warm_search_s="$rep_s"
    fi
done
echo "warm --store search: $SEARCH_BUDGET evaluations in $warm_search_s s (best of $REPS)"

echo "== perf gate: serve + loadgen (warm figure6 over the socket) =="
SOCK="$tmp/perf-gate.sock"
"$BIN" serve --socket "$SOCK" --jobs 0 >"$tmp/serve-stdout" 2>"$tmp/serve-stderr" &
serve_pid=$!
for _ in $(seq 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.1
done
if [[ ! -S "$SOCK" ]]; then
    echo "error: daemon never bound $SOCK" >&2
    cat "$tmp/serve-stderr" >&2
    exit 1
fi
# One warm-up request so loadgen measures the steady-state service path
# (wire protocol + engine cache hits), not first-touch profiling.
"$BIN" client --socket "$SOCK" figure6 --loops "$LOOPS" --buses 1 >/dev/null
best_rps=""
for rep in $(seq "$REPS"); do
    "$BIN" loadgen --socket "$SOCK" --clients 4 --requests 8 \
        figure6 --loops "$LOOPS" --buses 1 >"$tmp/loadgen-stdout" 2>"$tmp/loadgen-stderr"
    grep -E 'req/s' "$tmp/loadgen-stdout" || true
    rep_rps="$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['serve_requests_per_second'])" \
        "$ROOT/target/paper-results/loadgen.json")"
    if [[ -z "$best_rps" ]] || awk -v a="$rep_rps" -v b="$best_rps" 'BEGIN {exit !(a > b)}'; then
        best_rps="$rep_rps"
        cp "$ROOT/target/paper-results/loadgen.json" "$tmp/best-loadgen.json"
    fi
done
"$BIN" client --socket "$SOCK" shutdown >/dev/null
wait "$serve_pid"

python3 - "$ROOT/target/paper-results/figure6.json" "$OUT" "$LOOPS" "$wall" \
    "$tmp/best-schedbench.json" \
    "$tmp/best-searchbench.json" \
    "$tmp/best-loadgen.json" \
    "$SEARCH_BUDGET" "$warm_search_s" \
    "$ROOT/target/paper-results/search.json" \
    "$ROOT/target/paper-results/search.meta.json" <<'EOF'
import json, statistics, sys
rows = json.load(open(sys.argv[1]))
sched = json.load(open(sys.argv[5]))
search = json.load(open(sys.argv[6]))
serve = json.load(open(sys.argv[7]))
scaled = json.load(open(sys.argv[10]))
scaled_meta = json.load(open(sys.argv[11]))
mean = statistics.fmean(r["ed2_normalized"] for r in rows)
mean_time = statistics.fmean(r["exec_time_het_ns"] for r in rows)
warm_budget, warm_s = int(sys.argv[8]), float(sys.argv[9])
# Candidates the warm racing replay disposed of: full evaluations plus
# racing screens, all answered from the store.
disposed = scaled["evaluations"] + scaled_meta["screened"]
record = {
    "experiment": "figure6",
    "loops": int(sys.argv[3]),
    "buses": 1,
    "mean_ed2_normalized": mean,
    "mean_exec_time_het_ns": mean_time,
    "wall_time_s": float(sys.argv[4]),
    "sched_loops_per_second": sched["loops_per_second"],
    "sched_loops_scheduled": sched["loops_scheduled"],
    "search_evals_per_second": search["search_evals_per_second"],
    "search_evaluations": search["evaluations"],
    "serve_requests_per_second": serve["serve_requests_per_second"],
    "serve_p50_ms": serve["p50_ms"],
    "serve_p99_ms": serve["p99_ms"],
    "warm_search_evals_per_second": warm_budget / warm_s if warm_s else 0.0,
    "warm_search_wall_time_s": warm_s,
    "effective_evaluations": disposed,
    "effective_evals_per_second": disposed / warm_s if warm_s else 0.0,
}
json.dump(record, open(sys.argv[2], "w"), indent=2)
print(f"measured: mean ED2 {mean:.6f}, wall {record['wall_time_s']:.2f} s, "
      f"scheduler {record['sched_loops_per_second']:.1f} loops/s, "
      f"search {record['search_evals_per_second']:.2f} evals/s, "
      f"warm store {record['warm_search_evals_per_second']:.2f} evals/s, "
      f"effective {record['effective_evals_per_second']:.2f} evals/s, "
      f"service {record['serve_requests_per_second']:.1f} req/s "
      f"(p50 {record['serve_p50_ms']:.2f} ms, p99 {record['serve_p99_ms']:.2f} ms)")
EOF

if [[ "${1:-}" == "--write-baseline" ]]; then
    cp "$OUT" "$BASELINE"
    echo "baseline written to $BASELINE"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "error: no baseline at $BASELINE — commit one via: scripts/perf_gate.sh --write-baseline" >&2
    exit 1
fi

python3 - "$BASELINE" "$OUT" "$METRIC_TOL" "$TIME_RATIO" <<'EOF'
import json, sys
base = json.load(open(sys.argv[1]))
pr = json.load(open(sys.argv[2]))
tol, ratio = float(sys.argv[3]), float(sys.argv[4])
for key in ("experiment", "loops", "buses"):
    if base.get(key) != pr.get(key):
        print(f"perf gate FAILED: workload mismatch on {key!r}: "
              f"baseline {base.get(key)!r} vs pr {pr.get(key)!r} — "
              "metrics are not comparable (regenerate the baseline with "
              "scripts/perf_gate.sh --write-baseline)")
        sys.exit(1)
failures = []
for key in ("mean_ed2_normalized", "mean_exec_time_het_ns"):
    b, p = base[key], pr[key]
    drift = abs(p - b) / abs(b) if b else abs(p)
    status = "FAIL" if drift > tol else "ok"
    print(f"  {key}: baseline {b:.6g}, pr {p:.6g}, drift {drift:.2%} ({status})")
    if drift > tol:
        failures.append(f"{key} drifted {drift:.2%} > {tol:.2%}")
b, p = base["wall_time_s"], pr["wall_time_s"]
# Floor the baseline at 2 s so sub-second workloads are not gated on
# runner startup noise.
limit = max(b, 2.0) * ratio
status = "FAIL" if p > limit else "ok"
print(f"  wall_time_s: baseline {b:.2f}, pr {p:.2f}, limit {limit:.2f} ({status})")
if p > limit:
    failures.append(f"wall time {p:.2f} s exceeds limit {limit:.2f} s ({ratio}x max(baseline, 2 s))")
# Throughput metrics: higher is better. Tolerate runner variance with
# the same ratio, but a pipeline suddenly running BENCH_TIME_RATIO times
# slower than the committed baseline is a real regression.
# The warm-store replay is startup-dominated (tens of milliseconds), so
# it gets the same floored wall-time check as the figure6 run rather
# than a raw throughput floor: a warm run that re-measures instead of
# reading the store costs seconds, not milliseconds, and blows the
# limit; runner startup noise does not.
wb = base.get("warm_search_wall_time_s")
wp = pr.get("warm_search_wall_time_s")
if wb is not None and wp is not None:
    limit = max(wb, 2.0) * ratio
    status = "FAIL" if wp > limit else "ok"
    print(f"  warm_search_evals_per_second: baseline "
          f"{base['warm_search_evals_per_second']:.2f}, "
          f"pr {pr['warm_search_evals_per_second']:.2f} "
          f"(warm wall {wp:.3f} s, limit {limit:.2f} s, {status})")
    if wp > limit:
        failures.append(
            f"warm --store search took {wp:.2f} s, over limit {limit:.2f} s "
            f"({ratio}x max(baseline, 2 s)) — the store read path regressed")
elif wb is not None:
    failures.append("baseline has warm_search_wall_time_s but the PR measurement lacks it")
# The scaled-search advantage is an absolute target, not a drift check:
# racing + warm store must dispose of candidates at least 10x faster
# than the cold full-measurement search, whatever the runner's speed.
eb = base.get("effective_evals_per_second")
ep = pr.get("effective_evals_per_second")
if eb is not None and ep is None:
    failures.append("baseline has effective_evals_per_second but the PR measurement lacks it")
if ep is not None:
    target = 10.0 * pr["search_evals_per_second"]
    status = "FAIL" if ep < target else "ok"
    print(f"  effective_evals_per_second: baseline "
          f"{eb if eb is not None else float('nan'):.2f}, pr {ep:.2f}, "
          f"10x-cold target {target:.2f} ({status})")
    if ep < target:
        failures.append(
            f"effective throughput {ep:.2f}/s is under 10x the cold search rate "
            f"({target:.2f}/s) — racing + warm store stopped paying for themselves")
for key, what in (("sched_loops_per_second", "scheduler"),
                  ("search_evals_per_second", "search"),
                  ("serve_requests_per_second", "service")):
    b = base.get(key)
    p = pr.get(key)
    if b is not None and p is not None:
        floor = b / ratio
        status = "FAIL" if p < floor else "ok"
        print(f"  {key}: baseline {b:.2f}, pr {p:.2f}, "
              f"floor {floor:.2f}, speedup {p / b:.2f}x ({status})")
        if p < floor:
            failures.append(
                f"{what} throughput {p:.2f}/s below floor {floor:.2f} "
                f"(baseline {b:.2f} / {ratio}x)")
    elif b is not None:
        failures.append(f"baseline has {key} but the PR measurement lacks it")
if failures:
    print("perf gate FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("perf gate passed")
EOF
