//! Vendored, API-compatible subset of `proptest`.
//!
//! Offline build: this ships the slice the workspace's property tests use —
//! range strategies, tuple composition, [`Strategy::prop_map`],
//! [`collection::vec`], [`option::of`], the [`proptest!`] macro and the
//! `prop_assert*` / `prop_assume!` macros. No shrinking: a failing case
//! panics with the standard assertion message, and cases are deterministic
//! per test name, so failures reproduce exactly.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
pub use rand::Rng as _;
use rand::{RngCore, SampleRange, SeedableRng, Standard};

/// The deterministic RNG driving a test case.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// An RNG for case `case` of the test named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            fnv1a(name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Draws from the standard distribution.
    pub fn gen<T: Standard>(&mut self) -> T {
        rand::Rng::gen(&mut self.0)
    }

    /// Draws uniformly from a range.
    pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        rand::Rng::gen_range(&mut self.0, range)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug)]
pub struct Rejected;

/// Runner configuration (`cases` is the only knob the stub honours).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; keep the stub brisk but meaningful.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// A strategy that always yields clones of one value (`Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy (matching upstream's default weight).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    #[derive(Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        // The immediately-called closure gives `prop_assume!` an early
        // return target; the redundancy is the point.
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let cfg = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            // Allow a bounded number of prop_assume! rejections.
            let max_attempts = u64::from(cfg.cases) * 16 + 16;
            while accepted < cfg.cases && attempt < max_attempts {
                attempt += 1;
                let mut rng = $crate::TestRng::for_case(stringify!($name), attempt);
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::Rejected> {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                accepted == cfg.cases,
                "proptest stub: only {accepted}/{} cases accepted (too many prop_assume! rejections)",
                cfg.cases
            );
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// Rejects the current case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 1);
        let strat = (1u32..5, 0.0f64..1.0).prop_map(|(a, b)| f64::from(a) + b);
        for _ in 0..200 {
            let v = crate::Strategy::gen_value(&strat, &mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn vec_and_option_strategies() {
        let mut rng = crate::TestRng::for_case("vecopt", 1);
        let vs = crate::collection::vec(0usize..3, 2..5);
        let os = crate::option::of(1u8..3);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let v = crate::Strategy::gen_value(&vs, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
            match crate::Strategy::gen_value(&os, &mut rng) {
                None => saw_none = true,
                Some(x) => {
                    saw_some = true;
                    assert!((1..3).contains(&x));
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != b);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}
