//! Vendored, API-compatible subset of `criterion`.
//!
//! Offline build: provides [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros —
//! enough to compile and run the workspace's figure/table benches. It
//! measures wall-clock means over `sample_size` samples and prints one line
//! per benchmark; no statistics, plots or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark `id`, printing a mean-time summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters: 1,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let total: Duration = b.samples.iter().sum();
        let runs = b.samples.len().max(1) as u32;
        println!(
            "{id:<40} time: {:>12?} (mean of {runs} samples)",
            total / runs
        );
        self
    }
}

/// Times one closure invocation per sample.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Measures one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Groups benchmark functions under one entry point, mirroring criterion's
/// two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups. Under `cargo test` (which passes
/// `--test` to harness-less bench binaries) the benches are skipped so test
/// runs stay fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                println!("criterion stub: --test mode, benches skipped");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut hits = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("t", |b| {
                b.iter(|| {
                    hits += 1;
                });
            });
        assert_eq!(hits, 3);
    }

    fn target(c: &mut Criterion) {
        c.bench_function("group_target", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(simple, target);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn groups_are_callable() {
        simple();
        configured();
    }
}
