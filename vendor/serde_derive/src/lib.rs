//! `#[derive(Serialize)]` for the vendored serde stub.
//!
//! Hand-rolled on top of `proc_macro` alone (no `syn`/`quote` in the offline
//! build). Supports plain structs with named fields — exactly what the
//! experiment row types use. Anything else gets a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored stub trait) for a struct with
/// named fields, emitting a JSON object keyed by field name.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok((name, fields)) => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     serde::Serialize::serialize_into(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_into(&self, out: &mut String) {{\n{body}\n}}\n\
                 }}"
            )
            .parse()
            .expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Extracts `(struct_name, field_names)` from a derive input stream.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected struct name".to_owned()),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err("the vendored serde derive only supports structs".to_owned());
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "no struct found in derive input".to_owned())?;
    for tt in tokens {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return Ok((name, parse_fields(g.stream())?));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "the vendored serde derive does not support tuple struct {name}"
                ));
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err(format!(
                    "the vendored serde derive does not support generic struct {name}"
                ));
            }
            _ => {}
        }
    }
    Err(format!(
        "the vendored serde derive does not support unit struct {name}"
    ))
}

/// Extracts field names from the body of a braced struct.
fn parse_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Field prelude: attributes, then optional `pub` / `pub(...)`.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(field)) => fields.push(field.to_string()),
            None => break,
            Some(other) => return Err(format!("unexpected token {other} in struct body")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("expected `:` after field name".to_owned()),
        }
        // Skip the type: consume until a top-level comma. Generic angle
        // brackets never contain top-level commas visible here because
        // `TokenStream` groups only (), [] and {} — so track `<`/`>` depth.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {
                    tokens.next();
                }
            }
        }
    }
    Ok(fields)
}
