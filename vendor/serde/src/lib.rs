//! Vendored, API-compatible subset of `serde`.
//!
//! The build environment is offline, so this workspace ships the slice of
//! serde it uses: the [`Serialize`] trait plus a `#[derive(Serialize)]`
//! proc-macro (re-exported from the sibling `serde_derive` stub). Instead of
//! serde's full serializer abstraction, [`Serialize`] writes compact JSON
//! straight into a `String`; `serde_json` formats on top of that. This is
//! sufficient for the row structs the experiment runners dump.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// Types that can render themselves as compact JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_into(&self, out: &mut String);
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_into(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_into(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for bool {
    fn serialize_into(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_into(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_into(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_into(&self, out: &mut String) {
        (**self).serialize_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_into(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_into(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_into(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_into(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_into(&self, out: &mut String) {
        self.as_slice().serialize_into(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_into(&self, out: &mut String) {
        self.as_slice().serialize_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    #[test]
    fn primitives_and_containers() {
        let mut out = String::new();
        vec![1u32, 2, 3].serialize_into(&mut out);
        assert_eq!(out, "[1,2,3]");

        let mut out = String::new();
        ("he\"llo".to_owned()).serialize_into(&mut out);
        assert_eq!(out, "\"he\\\"llo\"");

        let mut out = String::new();
        Option::<u32>::None.serialize_into(&mut out);
        assert_eq!(out, "null");

        let mut out = String::new();
        f64::NAN.serialize_into(&mut out);
        assert_eq!(out, "null");

        let mut out = String::new();
        1.5f64.serialize_into(&mut out);
        assert_eq!(out, "1.5");
    }
}
