//! Vendored, API-compatible subset of `serde_json`: [`to_string`] and
//! [`to_string_pretty`] over the serde stub's compact-JSON `Serialize`,
//! plus a strict [`Value`] tree parser ([`from_str`]) for the loading
//! side (the workload-corpus format deserialises through it).

#![forbid(unsafe_code)]

mod value;

pub use value::{from_str, Number, ParseError, Value};

use std::fmt;

/// Serialisation error. The stub's serializers are infallible, so this is
/// only here so call sites can keep `serde_json::to_string(..)?` shapes.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails in the vendored stub; the `Result` mirrors upstream.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_into(&mut out);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent, like
/// upstream `serde_json`).
///
/// # Errors
///
/// Never fails in the vendored stub; the `Result` mirrors upstream.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-formats well-formed compact JSON with newlines and two-space indents.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    // Keep empty containers on one line.
                    out.push(c);
                    out.push(close);
                    chars.next();
                } else {
                    depth += 1;
                    out.push(c);
                    newline_indent(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline_indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline_indent(&mut out, depth);
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let rows = vec![vec![1u32, 2], vec![3]];
        assert_eq!(to_string(&rows).unwrap(), "[[1,2],[3]]");
        let pretty = to_string_pretty(&rows).unwrap();
        assert_eq!(pretty, "[\n  [\n    1,\n    2\n  ],\n  [\n    3\n  ]\n]");
    }

    #[test]
    fn braces_inside_strings_do_not_confuse_pretty() {
        let s = "a{b}[c],d:\"e\\\"".to_owned();
        let compact = to_string(&s).unwrap();
        assert_eq!(prettify(&compact), compact);
    }
}
