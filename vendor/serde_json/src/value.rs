//! A parsed JSON tree ([`Value`]) and a strict recursive-descent parser.
//!
//! Upstream `serde_json` deserialises through serde's `Deserialize`
//! machinery; the vendored stub instead exposes the parsed tree directly
//! and lets callers validate it field by field. Two deliberate choices
//! serve the workload-corpus format built on top:
//!
//! * **Objects preserve key order** (a `Vec` of pairs, not a map) and
//!   reject duplicate keys, so loaders can diagnose malformed files
//!   precisely.
//! * **Numbers keep their lexeme** ([`Number`] stores the raw text), so
//!   `f64::to_string` → parse → `str::parse::<f64>` round-trips to the
//!   exact same bits and `u64` values are never squeezed through `f64`.

use std::fmt;

/// A JSON number, kept as its raw lexeme so integers and floats parse
/// losslessly on access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Number {
    raw: String,
}

impl Number {
    /// The raw JSON lexeme (already validated by the parser).
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// The number as `f64` (always succeeds for parser-produced lexemes).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        self.raw.parse().expect("parser validated the lexeme")
    }

    /// The number as `u64`, if it is a non-negative integer lexeme in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.raw.parse().ok()
    }

    /// The number as `u32`, if it is a non-negative integer lexeme in range.
    #[must_use]
    pub fn as_u32(&self) -> Option<u32> {
        self.raw.parse().ok()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (raw lexeme, see [`Number`]).
    Number(Number),
    /// A string (escapes already decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: key/value pairs **in document order**, duplicate keys
    /// rejected at parse time.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object pairs (document order), if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// The value as `u64`, if it is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_number().and_then(Number::as_u64)
    }

    /// A short name of the value's JSON type, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A parse failure, with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, duplicate object keys, or
/// trailing non-whitespace.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    /// The original input; `bytes` is the same data. Keeping the `&str`
    /// lets string parsing slice out plain-character runs without
    /// re-validating UTF-8 (the `&str` type already guarantees it).
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting depth cap: corpus files are a few levels deep; a hostile input
/// must not be able to overflow the parser's stack.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.value_at_depth(0)
    }

    fn value_at_depth(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value_at_depth(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value_at_depth(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy the whole run of plain characters in one slice
                    // (O(run) — the input is a `&str`, so byte boundaries
                    // inside the run are already-valid UTF-8).
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\uXXXX` escape (surrogate pairs
    /// supported), with `self.pos` on the first digit.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits in unicode escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a non-zero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let raw = self.input[start..self.pos].to_owned();
        // Rust's `f64::from_str` saturates overflow to infinity rather
        // than erroring, so the range check must test the parsed value.
        match raw.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Number(Number { raw })),
            _ => Err(self.err("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("\"hi\"").unwrap().as_str(), Some("hi"));
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-1.5e3").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn numbers_keep_their_lexeme() {
        let v = from_str("0.30000000000000004").unwrap();
        let n = v.as_number().unwrap();
        assert_eq!(n.as_str(), "0.30000000000000004");
        assert_eq!(n.as_f64(), 0.1 + 0.2);
        // u64 precision survives where f64 would round.
        let v = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let v = from_str(&x.to_string()).unwrap();
            let back = v.as_number().unwrap().as_str().parse::<f64>().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn objects_preserve_order_and_reject_duplicates() {
        let v = from_str(r#"{"b":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
        assert!(v.get("c").is_none());

        let err = from_str(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn arrays_and_nesting() {
        let v = from_str(r#"[1,[2,3],{"k":[]}]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_array().unwrap().len(), 2);
        assert_eq!(items[2].get("k").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn string_escapes_decode() {
        let v = from_str(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair.
        let v = from_str(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn serialize_then_parse_round_trips() {
        // The stub's own Serialize output must parse back.
        let compact = crate::to_string(&vec!["a\"b".to_owned(), "c\u{1}d".to_owned()]).unwrap();
        let v = from_str(&compact).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("a\"b"));
        assert_eq!(items[1].as_str(), Some("c\u{1}d"));
        // Pretty output parses identically.
        let pretty = crate::to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), from_str("[1,2]").unwrap());
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for (input, needle) in [
            ("", "end of input"),
            ("{", "expected"),
            ("[1,]", "unexpected"),
            ("01", "trailing"),
            ("1.", "decimal"),
            ("1e", "exponent"),
            ("\"abc", "unterminated"),
            ("nul", "expected `null`"),
            ("[1] x", "trailing"),
            ("{\"a\" 1}", "expected `:`"),
            ("\"\u{1}\"", "control"),
        ] {
            let err = from_str(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "input {input:?}: got {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_saturated() {
        // f64::from_str saturates to infinity; the strict parser must not.
        for input in ["1e999", "-1e999", "1e400"] {
            let err = from_str(input).unwrap_err();
            assert!(err.message.contains("out of range"), "{input}: {err}");
        }
        // Large-but-finite values still parse.
        assert!(from_str("1e308").is_ok());
    }

    #[test]
    fn long_plain_strings_parse_in_linear_time() {
        // A ~1 MB document of short strings: the run-slicing string parser
        // must handle this instantly (the old per-char path re-validated
        // the whole remaining input per character, i.e. O(n²)).
        let doc = format!("[{}]", vec!["\"abcdefgh😀\""; 50_000].join(","));
        let start = std::time::Instant::now();
        let v = from_str(&doc).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "parsing 1 MB took {:?}",
            start.elapsed()
        );
        assert_eq!(v.as_array().unwrap().len(), 50_000);
        assert_eq!(v.as_array().unwrap()[0].as_str(), Some("abcdefgh😀"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = from_str(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn type_accessors_reject_mismatches() {
        let v = from_str("[1]").unwrap();
        assert!(v.as_str().is_none());
        assert!(v.as_object().is_none());
        assert!(v.as_f64().is_none());
        assert_eq!(v.type_name(), "array");
        assert_eq!(from_str("{}").unwrap().type_name(), "object");
        // Fractional and negative numbers are not u64/u32.
        assert!(from_str("1.5").unwrap().as_u64().is_none());
        assert!(from_str("-3").unwrap().as_u64().is_none());
    }
}
