//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships the
//! slice of `rand` 0.8 it actually uses: [`rngs::SmallRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//! Determinism for a given seed is all the workloads layer requires; the
//! stream differs from upstream `rand` but is stable across runs and
//! platforms (xoshiro256++ seeded via SplitMix64, the same construction
//! upstream `SmallRng` uses on 64-bit targets).

#![forbid(unsafe_code)]

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Keep the half-open contract: at magnitudes where the
                // interval is ~1 ulp the sum can round up to `end`.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        <f64 as Standard>::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn float_range_never_returns_exclusive_bound() {
        // At this magnitude the interval is ~1 ulp wide, so the naive
        // `start + unit * span` rounds up to `end` about half the time.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = rng.gen_range(16_777_215.0f32..16_777_216.0);
            assert!(v < 16_777_216.0, "exclusive bound returned: {v}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
