//! Property tests for the on-disk workload-corpus format.
//!
//! The contract under test (the tentpole acceptance criteria):
//!
//! 1. **Round trip**: serialize → load is *structural equality* — every
//!    benchmark, loop, DDG, op, edge and (bit-exact) weight survives.
//! 2. **Schedule equivalence**: a reloaded corpus schedules to
//!    **byte-identical JSON** rows vs. the in-memory originals, because
//!    the serial form preserves the `OpId`/`EdgeId` index invariants the
//!    scheduler's determinism rests on.

use heterovliw_core::machine::{ClockedConfig, MachineDesign, Time};
use heterovliw_core::sched::{schedule_loop, ScheduleOptions};
use heterovliw_core::workloads::{
    generate, generate_family, spec_fp2000, Benchmark, Corpus, Family,
};
use proptest::prelude::*;

fn roundtrip(corpus: &Corpus) -> Corpus {
    Corpus::from_json_str(&corpus.to_json_string()).expect("serialized corpus must load")
}

/// Schedules every loop of every benchmark on the reference and one
/// heterogeneous configuration and renders the outcomes as JSON.
fn schedule_rows(benches: &[Benchmark]) -> String {
    #[derive(serde::Serialize)]
    struct Row {
        benchmark: String,
        loop_name: String,
        config: String,
        it_ns: f64,
        exec_time_ns: f64,
        comms_per_iter: u64,
    }
    let design = MachineDesign::paper_machine(1);
    let configs = [
        ("ref", ClockedConfig::reference(design)),
        (
            "het",
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
        ),
    ];
    let mut rows = Vec::new();
    for b in benches {
        for l in &b.loops {
            for (name, config) in &configs {
                let opts = ScheduleOptions {
                    trip_count: l.trip_count(),
                    ..ScheduleOptions::default()
                };
                let s = schedule_loop(l.ddg(), config, None, &opts).expect("loop schedules");
                rows.push(Row {
                    benchmark: b.name.clone(),
                    loop_name: l.ddg().name().to_owned(),
                    config: (*name).to_owned(),
                    it_ns: s.it().as_ns(),
                    exec_time_ns: s.exec_time(l.trip_count()).as_ns(),
                    comms_per_iter: s.comms_per_iter(),
                });
            }
        }
    }
    serde_json::to_string(&rows).expect("rows serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any family benchmark, at any seed and small size, survives a
    /// serialize → load round trip structurally intact.
    #[test]
    fn family_corpus_round_trips(fi in 0usize..4, n in 1usize..5, seed in 0u64..10_000) {
        let family = Family::ALL[fi];
        let corpus = Corpus::from_benchmarks(vec![generate_family(family, n, seed)]);
        let back = roundtrip(&corpus);
        prop_assert_eq!(&corpus, &back);
        // Weights are preserved to the bit, not to an epsilon.
        for (a, b) in corpus.benchmarks.iter().zip(&back.benchmarks) {
            for (la, lb) in a.loops.iter().zip(&b.loops) {
                prop_assert_eq!(la.weight().to_bits(), lb.weight().to_bits());
                prop_assert_eq!(la.trip_count(), lb.trip_count());
            }
        }
    }

    /// SPEC-calibrated benchmarks round trip too (different generator,
    /// same format).
    #[test]
    fn spec_corpus_round_trips(bi in 0usize..10, n in 1usize..4) {
        let corpus = Corpus::from_benchmarks(vec![generate(&spec_fp2000()[bi], n)]);
        prop_assert_eq!(&roundtrip(&corpus), &corpus);
    }

    /// The reloaded corpus schedules to byte-identical JSON rows vs. the
    /// in-memory originals, on homogeneous and heterogeneous machines.
    #[test]
    fn reloaded_corpus_schedules_byte_identically(fi in 0usize..4, seed in 0u64..1_000) {
        let family = Family::ALL[fi];
        let corpus = Corpus::from_benchmarks(vec![generate_family(family, 2, seed)]);
        let back = roundtrip(&corpus);
        prop_assert_eq!(
            schedule_rows(&corpus.benchmarks),
            schedule_rows(&back.benchmarks)
        );
    }
}

/// A multi-benchmark corpus (SPEC + all families) round trips as a whole
/// document, preserving benchmark order.
#[test]
fn mixed_corpus_round_trips() {
    let mut benches = vec![generate(&spec_fp2000()[8], 3)];
    benches.extend(Family::ALL.map(|f| generate_family(f, 3, f.default_seed())));
    let corpus = Corpus::from_benchmarks(benches);
    let back = roundtrip(&corpus);
    assert_eq!(corpus, back);
    let names: Vec<&str> = back.benchmarks.iter().map(|b| b.name.as_str()).collect();
    assert_eq!(
        names,
        ["200.sixtrack", "membound", "ilpwide", "multirec", "stress"]
    );
}
