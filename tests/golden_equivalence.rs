//! Golden refactor-equivalence tests.
//!
//! The fixtures under `tests/golden/` were captured from the pipeline
//! *before* the dense-IR/workspace refactor (PR 3). These tests pin the
//! current pipeline's figure6, figure7 and table2 JSON **byte-identical**
//! to that output, at both `--jobs 1` and `--jobs 4` — the acceptance
//! criterion that the data-layer rebuild changed where scratch memory
//! lives, never what is computed.
//!
//! If an *intentional* behaviour change lands later, regenerate the
//! fixtures with the commands recorded in each fixture's test below and
//! say so in the commit message.

use heterovliw_core::Study;

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn pretty<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("serialise rows")
}

/// `paper --experiment figure6 --loops 5 --buses 1` (pre-refactor seed).
#[test]
fn figure6_json_is_byte_identical_to_pre_refactor_output() {
    let fixture = golden("figure6_loops5_buses1.json");
    for jobs in [1usize, 4] {
        let rows = Study::new()
            .with_loops_per_benchmark(5)
            .with_buses(1)
            .with_jobs(jobs)
            .figure6()
            .expect("figure6 pipeline runs");
        assert_eq!(
            pretty(&rows),
            fixture,
            "figure6 rows drifted from the pre-refactor golden at --jobs {jobs}"
        );
    }
}

/// `paper --experiment figure7 --loops 4 --buses 1` (pre-refactor seed).
#[test]
fn figure7_json_is_byte_identical_to_pre_refactor_output() {
    let fixture = golden("figure7_loops4_buses1.json");
    for jobs in [1usize, 4] {
        let rows = Study::new()
            .with_loops_per_benchmark(4)
            .with_buses(1)
            .with_jobs(jobs)
            .figure7()
            .expect("figure7 pipeline runs");
        assert_eq!(
            pretty(&rows),
            fixture,
            "figure7 rows drifted from the pre-refactor golden at --jobs {jobs}"
        );
    }
}

/// `paper --experiment table2 --loops 5` (pre-refactor seed).
#[test]
fn table2_json_is_byte_identical_to_pre_refactor_output() {
    let fixture = golden("table2_loops5.json");
    for jobs in [1usize, 4] {
        let rows = Study::new()
            .with_loops_per_benchmark(5)
            .with_jobs(jobs)
            .table2();
        assert_eq!(
            pretty(&rows),
            fixture,
            "table2 rows drifted from the pre-refactor golden at --jobs {jobs}"
        );
    }
}
