//! Golden fixtures for the seeded design-space search.
//!
//! The fixtures under `tests/golden/` were captured from
//! `paper search --strategy <s> --budget 8 --seed 1 --loops 2 --buses 1`
//! and CI's `search-smoke` job diffs the binary's output against the
//! same files. These tests pin the library path: each strategy's report
//! must serialise **byte-identically** to its fixture at `--jobs 1` and
//! `--jobs 4` — seeded search is deterministic across machines and
//! worker counts.
//!
//! If an *intentional* behaviour change lands later, regenerate the
//! fixtures with the command above and say so in the commit message.

use heterovliw_core::explore::SpaceKind;
use heterovliw_core::search::Strategy;
use heterovliw_core::Study;

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn check(strategy: Strategy, fixture: &str) {
    let fixture = golden(fixture);
    for jobs in [1usize, 4] {
        let report = Study::new()
            .with_loops_per_benchmark(2)
            .with_buses(1)
            .with_seed(1)
            .with_jobs(jobs)
            .search(SpaceKind::Paper, strategy, 8)
            .expect("search pipeline runs");
        assert_eq!(
            serde_json::to_string_pretty(&report).expect("serialise report"),
            fixture,
            "{strategy} report drifted from the committed golden at --jobs {jobs}"
        );
    }
}

#[test]
fn hillclimb_report_matches_committed_golden() {
    check(
        Strategy::HillClimb,
        "search_hillclimb_loops2_budget8_seed1.json",
    );
}

#[test]
fn anneal_report_matches_committed_golden() {
    check(Strategy::Anneal, "search_anneal_loops2_budget8_seed1.json");
}

#[test]
fn ga_report_matches_committed_golden() {
    check(Strategy::Genetic, "search_ga_loops2_budget8_seed1.json");
}
