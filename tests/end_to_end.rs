//! Cross-crate integration tests: the full pipeline from workload
//! generation through scheduling, simulation and the experiment runners.

use heterovliw::explore::experiments::{
    figure6, mean_normalized, profile_suite, table2, ExperimentOptions,
};
use heterovliw::ir::{DdgBuilder, OpClass};
use heterovliw::machine::{ClockedConfig, ClusterId, MachineDesign, Time};
use heterovliw::power::{EnergyShares, PowerModel, ReferenceProfile};
use heterovliw::sched::{schedule_loop, ScheduleOptions};
use heterovliw::sim::{simulate, validate};
use heterovliw::workloads::{generate, spec_fp2000, suite};

/// Every loop of every benchmark schedules and validates on the reference
/// machine and on a heterogeneous machine.
#[test]
fn whole_suite_schedules_and_validates() {
    let design = MachineDesign::paper_machine(1);
    let reference = ClockedConfig::reference(design);
    let hetero = ClockedConfig::heterogeneous(design, Time::from_ns(0.95), 1, Time::from_ns(1.25));
    let mut opts = ScheduleOptions::default();
    for bench in suite(6) {
        for l in &bench.loops {
            opts.trip_count = l.trip_count();
            for config in [&reference, &hetero] {
                let s = schedule_loop(l.ddg(), config, None, &opts)
                    .unwrap_or_else(|e| panic!("{}: {e}", l.ddg().name()));
                validate(l.ddg(), config, &s).unwrap_or_else(|v| {
                    panic!(
                        "{}: {} violations, first: {}",
                        l.ddg().name(),
                        v.len(),
                        v[0]
                    )
                });
                let r = simulate(l.ddg(), config, &s, l.trip_count());
                assert_eq!(r.exec_time, s.exec_time(l.trip_count()));
            }
        }
    }
}

/// The headline result holds on a reduced suite: heterogeneity lowers mean
/// ED², with the strongest benefit on a recurrence-bound benchmark.
#[test]
fn figure6_shape_holds_on_reduced_suite() {
    let benches = vec![
        generate(&spec_fp2000()[8], 8),
        generate(&spec_fp2000()[5], 8),
        generate(&spec_fp2000()[1], 8),
    ];
    let profiled = profile_suite(&benches, 1, &ScheduleOptions::default()).unwrap();
    let rows = figure6(&profiled, &ExperimentOptions::default()).unwrap();
    assert_eq!(rows.len(), 3);
    let sixtrack = rows.iter().find(|r| r.benchmark == "200.sixtrack").unwrap();
    let swim = rows.iter().find(|r| r.benchmark == "171.swim").unwrap();
    assert!(
        sixtrack.ed2_normalized < 0.95,
        "sixtrack must clearly win: {}",
        sixtrack.ed2_normalized
    );
    assert!(
        sixtrack.ed2_normalized < swim.ed2_normalized,
        "recurrence-bound beats resource-bound ({} vs {})",
        sixtrack.ed2_normalized,
        swim.ed2_normalized
    );
    let mean = mean_normalized(&rows);
    assert!(mean < 1.0, "heterogeneity wins on average: {mean}");
}

/// Table 2's class mix is exact by construction.
#[test]
fn table2_matches_paper_rows() {
    let rows = table2(&suite(12));
    let find = |name: &str| rows.iter().find(|r| r.benchmark == name).unwrap();
    assert!((find("171.swim").resource_pct - 100.0).abs() < 1e-6);
    assert!((find("200.sixtrack").recurrence_pct - 99.92).abs() < 1e-6);
    assert!((find("168.wupwise").borderline_pct - 68.76).abs() < 1e-6);
    assert!((find("187.facerec").recurrence_pct - 83.41).abs() < 1e-6);
}

/// Scheduling a hand-built loop across crates: the energy accounting the
/// simulator reports matches what the power model expects.
#[test]
fn energy_accounting_is_consistent() {
    let mut b = DdgBuilder::new("kernel");
    let l0 = b.op("ld", OpClass::FpMemory);
    let m = b.op("mul", OpClass::FpMul);
    let a = b.op("add", OpClass::FpArith);
    let st = b.op("st", OpClass::FpMemory);
    b.flow(l0, m);
    b.flow(m, a);
    b.flow_carried(a, a, 1);
    b.flow(a, st);
    let ddg = b.build().unwrap();

    let design = MachineDesign::paper_machine(1);
    let config = ClockedConfig::reference(design);
    let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
    let report = simulate(&ddg, &config, &s, 200);

    let reference = ReferenceProfile {
        weighted_ins: report.total_weighted_ins(),
        comms: report.comms,
        mem_accesses: report.mem_accesses,
        exec_time: report.exec_time,
    };
    let power = PowerModel::calibrate(design, EnergyShares::PAPER, &reference);
    let usage = s.usage(200);
    let energy = power.estimate_energy(&config, &usage).unwrap();
    assert!(
        (energy - 1.0).abs() < 1e-9,
        "self-calibration returns unity, got {energy}"
    );
}

/// A deliberately bad fixed partition is either scheduled correctly or
/// rejected — never silently wrong.
#[test]
fn pathological_partition_stays_sound() {
    let mut b = DdgBuilder::new("zigzag");
    let ids: Vec<_> = (0..8)
        .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
        .collect();
    for w in ids.windows(2) {
        b.flow(w[0], w[1]);
    }
    let ddg = b.build().unwrap();
    let design = MachineDesign::paper_machine(1);
    let config = ClockedConfig::reference(design);
    // Alternate clusters on a tight chain: maximum communication pressure.
    let partition = heterovliw::sched::Partition {
        assignment: (0..8).map(|i| ClusterId((i % 4) as u8)).collect(),
    };
    let s = heterovliw::sched::schedule_loop_with_partition(
        &ddg,
        &config,
        &partition,
        &ScheduleOptions::default(),
    )
    .unwrap();
    validate(&ddg, &config, &s).unwrap();
    assert!(s.comms_per_iter() >= 7, "every edge crosses clusters");
}
