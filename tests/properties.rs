//! Property-based integration tests: randomly generated loops must always
//! produce sound schedules on arbitrary (sane) machine configurations.

use proptest::prelude::*;

use heterovliw::ir::{Ddg, DdgBuilder, OpClass};
use heterovliw::machine::{ClockedConfig, MachineDesign, Time};
use heterovliw::sched::{schedule_loop, ScheduleOptions};
use heterovliw::sim::validate;

/// A random schedulable DDG: a layered DAG plus an optional carried
/// accumulator recurrence.
fn arb_ddg() -> impl Strategy<Value = Ddg> {
    (
        2usize..14,                                  // body ops
        proptest::collection::vec(0usize..6, 0..16), // extra edges (src offset)
        proptest::option::of(1u32..3),               // recurrence distance
        0usize..4,                                   // memory op count
    )
        .prop_map(|(n, extra, rec_dist, mems)| {
            let mut b = DdgBuilder::new("prop");
            let classes = [OpClass::IntArith, OpClass::FpArith, OpClass::FpMul];
            let ids: Vec<_> = (0..n)
                .map(|i| b.op(format!("n{i}"), classes[i % classes.len()]))
                .collect();
            for w in ids.windows(2) {
                b.flow(w[0], w[1]);
            }
            for (i, &off) in extra.iter().enumerate() {
                let src = i % n;
                let dst = (src + 1 + off) % n;
                if src < dst {
                    b.flow(ids[src], ids[dst]);
                }
            }
            for (i, &dst) in ids.iter().enumerate().take(mems.min(n)) {
                let m = b.op(format!("mem{i}"), OpClass::FpMemory);
                b.flow(m, dst);
            }
            if let Some(d) = rec_dist {
                b.flow_carried(ids[n - 1], ids[0], d);
            }
            b.build().expect("generated graphs are well-formed")
        })
}

fn arb_config() -> impl Strategy<Value = ClockedConfig> {
    (900u64..1100, 1.0f64..1.6, 1u8..4, 1u32..3).prop_map(|(fast_fs_k, ratio, num_fast, buses)| {
        let design = MachineDesign::paper_machine(buses);
        let fast = Time::from_fs(fast_fs_k * 1000);
        let slow = Time::from_ns(fast.as_ns() * ratio);
        ClockedConfig::heterogeneous(design, fast, num_fast, slow)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever loop and machine we draw, the scheduler's output passes
    /// the simulator's independent validation.
    #[test]
    fn schedules_are_always_sound(ddg in arb_ddg(), config in arb_config()) {
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default())
            .expect("generated loops are schedulable");
        validate(&ddg, &config, &s).expect("schedule validates");
        // IT respects the recurrence bound paced by the fastest cluster.
        let rec_bound = config.fastest_cluster_cycle() * u64::from(ddg.rec_mii());
        prop_assert!(s.it() >= rec_bound);
    }

    /// Execution time is exactly linear in the iteration count.
    #[test]
    fn exec_time_is_affine(ddg in arb_ddg(), config in arb_config(), n in 1u64..500) {
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default())
            .expect("schedulable");
        let t1 = s.exec_time(n);
        let t2 = s.exec_time(n + 7);
        prop_assert_eq!(t2 - t1, s.it() * 7);
    }
}
